// Arbitrary-precision unsigned integers.
//
// Built for the Paillier baseline (src/paillier): 512–2048-bit moduli,
// Montgomery exponentiation in the hot path, binary long division
// elsewhere. Little-endian 64-bit limbs, always normalised (no leading
// zero words except the canonical zero, which is an empty vector).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace cham {

class BigUInt {
 public:
  BigUInt() = default;
  BigUInt(std::uint64_t v) {  // NOLINT: implicit by design
    if (v != 0) words_.push_back(v);
  }

  static BigUInt from_hex(const std::string& hex);
  std::string to_hex() const;

  // Uniform in [0, bound).
  static BigUInt random_below(const BigUInt& bound, Rng& rng);
  // Uniform with exactly `bits` bits (MSB set).
  static BigUInt random_bits(int bits, Rng& rng);

  bool is_zero() const { return words_.empty(); }
  bool is_odd() const { return !words_.empty() && (words_[0] & 1); }
  int bit_length() const;
  bool bit(int i) const;
  std::size_t word_count() const { return words_.size(); }
  std::uint64_t word(std::size_t i) const {
    return i < words_.size() ? words_[i] : 0;
  }
  // Value as u64 (must fit).
  std::uint64_t to_u64() const;

  // Comparison: <0, 0, >0.
  static int compare(const BigUInt& a, const BigUInt& b);
  friend bool operator==(const BigUInt& a, const BigUInt& b) {
    return compare(a, b) == 0;
  }
  friend bool operator<(const BigUInt& a, const BigUInt& b) {
    return compare(a, b) < 0;
  }
  friend bool operator<=(const BigUInt& a, const BigUInt& b) {
    return compare(a, b) <= 0;
  }
  friend bool operator>(const BigUInt& a, const BigUInt& b) {
    return compare(a, b) > 0;
  }
  friend bool operator>=(const BigUInt& a, const BigUInt& b) {
    return compare(a, b) >= 0;
  }
  friend bool operator!=(const BigUInt& a, const BigUInt& b) {
    return compare(a, b) != 0;
  }

  friend BigUInt operator+(const BigUInt& a, const BigUInt& b);
  // Requires a >= b.
  friend BigUInt operator-(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator*(const BigUInt& a, const BigUInt& b);
  friend BigUInt operator<<(const BigUInt& a, int bits);
  friend BigUInt operator>>(const BigUInt& a, int bits);

  // Quotient and remainder (b != 0).
  static void divmod(const BigUInt& a, const BigUInt& b, BigUInt* q,
                     BigUInt* r);
  friend BigUInt operator/(const BigUInt& a, const BigUInt& b) {
    BigUInt q, r;
    divmod(a, b, &q, &r);
    return q;
  }
  friend BigUInt operator%(const BigUInt& a, const BigUInt& b) {
    BigUInt q, r;
    divmod(a, b, &q, &r);
    return r;
  }

  static BigUInt gcd(BigUInt a, BigUInt b);
  static BigUInt lcm(const BigUInt& a, const BigUInt& b);
  // Modular inverse of a mod m (must exist).
  static BigUInt mod_inverse(const BigUInt& a, const BigUInt& m);
  // a^e mod m (m odd uses Montgomery; even m falls back to divmod).
  static BigUInt mod_pow(const BigUInt& a, const BigUInt& e, const BigUInt& m);

  // Miller–Rabin with `rounds` random bases.
  static bool is_probable_prime(const BigUInt& n, Rng& rng, int rounds = 24);
  // Random prime with exactly `bits` bits.
  static BigUInt random_prime(int bits, Rng& rng);

 private:
  friend class Montgomery;
  void trim();
  std::vector<std::uint64_t> words_;
};

// Montgomery context for repeated multiplication mod an odd modulus.
class Montgomery {
 public:
  explicit Montgomery(const BigUInt& modulus);

  const BigUInt& modulus() const { return n_; }
  BigUInt to_mont(const BigUInt& a) const;    // a*R mod n
  BigUInt from_mont(const BigUInt& a) const;  // a*R^{-1} mod n
  BigUInt mul(const BigUInt& a, const BigUInt& b) const;  // Montgomery product
  BigUInt pow(const BigUInt& base, const BigUInt& exp) const;

 private:
  BigUInt n_;
  std::size_t k_ = 0;        // limb count of n
  std::uint64_t n_prime_ = 0;  // -n^{-1} mod 2^64
  BigUInt r2_;               // R^2 mod n
};

}  // namespace cham
