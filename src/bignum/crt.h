// Span-wise CRT (Chinese remainder theorem) engine over a fixed chain of
// word-sized moduli.
//
// RnsBase freezes one of these at creation. Every constant the Garner
// mixed-radix recursion and the 128-bit residue reduction need — Barrett
// ratios floor(2^64/q_j), 2^64 mod q_j, the partial products
// Π_{l'<l} q_l' mod q_j and their inverses — is precomputed once as a
// Shoup pair, so the per-polynomial paths (decryption's compose, CKKS
// decode, digit lifting, rescale) run as whole-span kernel calls on the
// dispatched SIMD table instead of per-coefficient u128 divisions. On the
// AVX-512-IFMA level the spans route through the 52-bit (or, for wide
// moduli, double-word) datapaths like every other kernel call.
#pragma once

#include <cstddef>
#include <vector>

#include "nt/modulus.h"
#include "simd/aligned.h"

namespace cham {
namespace simd {
struct Kernels;
}  // namespace simd

class CrtSpans {
 public:
  CrtSpans() = default;
  explicit CrtSpans(std::vector<Modulus> moduli);

  std::size_t size() const { return moduli_.size(); }
  const Modulus& modulus(std::size_t j) const { return moduli_[j]; }
  // Π q_j (must fit in 128 bits; checked at construction).
  u128 total() const { return total_; }

  // Frozen floor(2^64 / q_j) — the operand every barrett_reduce kernel
  // call over modulus j wants.
  u64 q_barrett(std::size_t j) const { return q_barrett_[j]; }
  // Frozen 2^64 mod q_j as a Shoup pair (hi-word folding in the 128-bit
  // reductions below).
  const ShoupMul& r64(std::size_t j) const { return r64_[j]; }

  // --- single values (scalar Garner; context setup & probes) ---
  u128 compose_value(const u64* residues) const;
  void decompose_value(u128 value, u64* residues_out) const;

  // --- whole spans (vectorized; the polynomial-sized paths) ---
  // Each span method runs on the dispatched kernel table; the overloads
  // taking an explicit simd::Kernels let the tests and benches pit every
  // compiled backend in one process (same idiom as NttTables::
  // forward_with). Results are bit-exact across tables.
  //
  // out[i] = compose of column i. residues is limb-major with the given
  // stride between limbs (limb j starts at residues + j*stride); every
  // entry of limb j must already be < q_j.
  void compose_spans(const u64* residues, std::size_t stride, std::size_t n,
                     u128* out) const;
  void compose_spans(const simd::Kernels& k, const u64* residues,
                     std::size_t stride, std::size_t n, u128* out) const;
  // residues_out[j*stride + i] = values[i] mod q_j for every limb j;
  // values are arbitrary u128s.
  void decompose_spans(const u128* values, std::size_t n, u64* residues_out,
                       std::size_t stride) const;
  void decompose_spans(const simd::Kernels& k, const u128* values,
                       std::size_t n, u64* residues_out,
                       std::size_t stride) const;
  // One limb of decompose_spans with the 128-bit inputs pre-split into
  // 64-bit halves: out[i] = (hi[i]·2^64 + lo[i]) mod q_j. scratch must
  // hold n words and may not alias the inputs; out may not alias hi/lo.
  // lift_centered uses this directly so the split (and the sign plane)
  // are computed once for all target limbs.
  void reduce_words_mod(std::size_t j, const u64* hi, const u64* lo,
                        u64* out, std::size_t n, u64* scratch) const;
  void reduce_words_mod(const simd::Kernels& k, std::size_t j,
                        const u64* hi, const u64* lo, u64* out,
                        std::size_t n, u64* scratch) const;

 private:
  std::vector<Modulus> moduli_;
  u128 total_ = 1;
  std::vector<u64> q_barrett_;
  std::vector<ShoupMul> r64_;
  // Garner: inv_[j] = (Π_{l<j} q_l)^{-1} mod q_j;
  // partial_[j][l] = (Π_{l'<l} q_l') mod q_j; shift_[j] = Π_{l<j} q_l.
  std::vector<ShoupMul> inv_;
  std::vector<std::vector<ShoupMul>> partial_;
  std::vector<u128> shift_;
};

}  // namespace cham
