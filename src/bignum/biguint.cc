#include "bignum/biguint.h"

#include <algorithm>

namespace cham {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;
}  // namespace

void BigUInt::trim() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

BigUInt BigUInt::from_hex(const std::string& hex) {
  BigUInt out;
  for (char c : hex) {
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = c - 'A' + 10;
    } else {
      CHAM_CHECK_MSG(false, "invalid hex digit");
      return out;
    }
    out = (out << 4) + BigUInt(static_cast<u64>(d));
  }
  return out;
}

std::string BigUInt::to_hex() const {
  if (is_zero()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string s;
  for (std::size_t i = words_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      s.push_back(digits[(words_[i] >> shift) & 0xF]);
    }
  }
  const std::size_t first = s.find_first_not_of('0');
  return s.substr(first);
}

int BigUInt::bit_length() const {
  if (words_.empty()) return 0;
  u64 top = words_.back();
  int bits = 0;
  while (top != 0) {
    top >>= 1;
    ++bits;
  }
  return static_cast<int>((words_.size() - 1) * 64) + bits;
}

bool BigUInt::bit(int i) const {
  const std::size_t w = static_cast<std::size_t>(i) / 64;
  if (w >= words_.size()) return false;
  return (words_[w] >> (i % 64)) & 1;
}

std::uint64_t BigUInt::to_u64() const {
  CHAM_CHECK_MSG(words_.size() <= 1, "value does not fit in 64 bits");
  return words_.empty() ? 0 : words_[0];
}

BigUInt BigUInt::random_bits(int bits, Rng& rng) {
  CHAM_CHECK(bits >= 1);
  BigUInt out;
  const int words = (bits + 63) / 64;
  out.words_.resize(words);
  for (auto& w : out.words_) w = rng.next_u64();
  const int top_bits = bits - (words - 1) * 64;
  u64& top = out.words_.back();
  if (top_bits < 64) top &= (1ULL << top_bits) - 1;
  top |= 1ULL << (top_bits - 1);  // force exact bit length
  out.trim();
  return out;
}

BigUInt BigUInt::random_below(const BigUInt& bound, Rng& rng) {
  CHAM_CHECK(!bound.is_zero());
  const int bits = bound.bit_length();
  for (;;) {
    BigUInt c;
    const int words = (bits + 63) / 64;
    c.words_.resize(words);
    for (auto& w : c.words_) w = rng.next_u64();
    const int top_bits = bits - (words - 1) * 64;
    if (top_bits < 64) c.words_.back() &= (1ULL << top_bits) - 1;
    c.trim();
    if (c < bound) return c;
  }
}

int BigUInt::compare(const BigUInt& a, const BigUInt& b) {
  if (a.words_.size() != b.words_.size()) {
    return a.words_.size() < b.words_.size() ? -1 : 1;
  }
  for (std::size_t i = a.words_.size(); i-- > 0;) {
    if (a.words_[i] != b.words_[i]) return a.words_[i] < b.words_[i] ? -1 : 1;
  }
  return 0;
}

BigUInt operator+(const BigUInt& a, const BigUInt& b) {
  BigUInt out;
  const std::size_t n = std::max(a.words_.size(), b.words_.size());
  out.words_.resize(n);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 s = static_cast<u128>(a.word(i)) + b.word(i) + carry;
    out.words_[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  if (carry) out.words_.push_back(carry);
  return out;
}

BigUInt operator-(const BigUInt& a, const BigUInt& b) {
  CHAM_CHECK_MSG(a >= b, "BigUInt subtraction underflow");
  BigUInt out;
  out.words_.resize(a.words_.size());
  u64 borrow = 0;
  for (std::size_t i = 0; i < a.words_.size(); ++i) {
    const u64 bi = b.word(i);
    u64 d = a.words_[i] - bi;
    const u64 borrow2 = (a.words_[i] < bi) ? 1 : 0;
    const u64 d2 = d - borrow;
    const u64 borrow3 = (d < borrow) ? 1 : 0;
    out.words_[i] = d2;
    borrow = borrow2 | borrow3;
  }
  out.trim();
  return out;
}

namespace {

// Schoolbook product of word spans into out (out has size an+bn, zeroed).
void mul_schoolbook(const u64* a, std::size_t an, const u64* b,
                    std::size_t bn, u64* out) {
  for (std::size_t i = 0; i < an; ++i) {
    u64 carry = 0;
    const u64 ai = a[i];
    for (std::size_t j = 0; j < bn; ++j) {
      const u128 cur = static_cast<u128>(ai) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out[i + bn] += carry;
  }
}

constexpr std::size_t kKaratsubaThreshold = 24;  // words

std::vector<u64> span_to_words(const u64* p, std::size_t n) {
  std::vector<u64> v(p, p + n);
  while (!v.empty() && v.back() == 0) v.pop_back();
  return v;
}

void add_into(std::vector<u64>& acc, const std::vector<u64>& x,
              std::size_t shift) {
  if (acc.size() < x.size() + shift + 1) acc.resize(x.size() + shift + 1, 0);
  u64 carry = 0;
  std::size_t i = 0;
  for (; i < x.size(); ++i) {
    const u128 s = static_cast<u128>(acc[i + shift]) + x[i] + carry;
    acc[i + shift] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  while (carry != 0) {
    const u128 s = static_cast<u128>(acc[i + shift]) + carry;
    acc[i + shift] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
    ++i;
  }
}

// acc -= x (acc >= x guaranteed by Karatsuba's algebra).
void sub_from(std::vector<u64>& acc, const std::vector<u64>& x) {
  u64 borrow = 0;
  for (std::size_t i = 0; i < x.size() || borrow; ++i) {
    const u64 xi = i < x.size() ? x[i] : 0;
    const u64 before = acc[i];
    const u64 mid = before - xi;
    const u64 after = mid - borrow;
    borrow = (before < xi) || (mid < borrow);
    acc[i] = after;
  }
}

std::vector<u64> add_words(const std::vector<u64>& a,
                           const std::vector<u64>& b) {
  std::vector<u64> out(std::max(a.size(), b.size()) + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < out.size() - 1; ++i) {
    const u64 ai = i < a.size() ? a[i] : 0;
    const u64 bi = i < b.size() ? b[i] : 0;
    const u128 s = static_cast<u128>(ai) + bi + carry;
    out[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  out.back() = carry;
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

// Recursive Karatsuba over word vectors.
std::vector<u64> mul_karatsuba(const std::vector<u64>& a,
                               const std::vector<u64>& b) {
  if (a.empty() || b.empty()) return {};
  if (std::min(a.size(), b.size()) < kKaratsubaThreshold) {
    std::vector<u64> out(a.size() + b.size(), 0);
    mul_schoolbook(a.data(), a.size(), b.data(), b.size(), out.data());
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
  }
  const std::size_t half = std::max(a.size(), b.size()) / 2;
  const auto a_lo = span_to_words(a.data(), std::min(half, a.size()));
  const auto a_hi = a.size() > half
                        ? span_to_words(a.data() + half, a.size() - half)
                        : std::vector<u64>{};
  const auto b_lo = span_to_words(b.data(), std::min(half, b.size()));
  const auto b_hi = b.size() > half
                        ? span_to_words(b.data() + half, b.size() - half)
                        : std::vector<u64>{};

  auto z0 = mul_karatsuba(a_lo, b_lo);
  auto z2 = mul_karatsuba(a_hi, b_hi);
  auto z1 = mul_karatsuba(add_words(a_lo, a_hi), add_words(b_lo, b_hi));
  sub_from(z1, z0);
  sub_from(z1, z2);
  while (!z1.empty() && z1.back() == 0) z1.pop_back();

  std::vector<u64> out;
  add_into(out, z0, 0);
  add_into(out, z1, half);
  add_into(out, z2, 2 * half);
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

}  // namespace

BigUInt operator*(const BigUInt& a, const BigUInt& b) {
  if (a.is_zero() || b.is_zero()) return BigUInt();
  BigUInt out;
  if (std::min(a.words_.size(), b.words_.size()) < kKaratsubaThreshold) {
    out.words_.assign(a.words_.size() + b.words_.size(), 0);
    mul_schoolbook(a.words_.data(), a.words_.size(), b.words_.data(),
                   b.words_.size(), out.words_.data());
  } else {
    out.words_ = mul_karatsuba(a.words_, b.words_);
  }
  out.trim();
  return out;
}

BigUInt operator<<(const BigUInt& a, int bits) {
  CHAM_CHECK(bits >= 0);
  if (a.is_zero() || bits == 0) return a;
  const int word_shift = bits / 64;
  const int bit_shift = bits % 64;
  BigUInt out;
  out.words_.assign(a.words_.size() + word_shift + 1, 0);
  for (std::size_t i = 0; i < a.words_.size(); ++i) {
    out.words_[i + word_shift] |= a.words_[i] << bit_shift;
    if (bit_shift != 0) {
      out.words_[i + word_shift + 1] |= a.words_[i] >> (64 - bit_shift);
    }
  }
  out.trim();
  return out;
}

BigUInt operator>>(const BigUInt& a, int bits) {
  CHAM_CHECK(bits >= 0);
  const int word_shift = bits / 64;
  const int bit_shift = bits % 64;
  if (static_cast<std::size_t>(word_shift) >= a.words_.size()) return {};
  BigUInt out;
  out.words_.assign(a.words_.size() - word_shift, 0);
  for (std::size_t i = 0; i < out.words_.size(); ++i) {
    out.words_[i] = a.words_[i + word_shift] >> bit_shift;
    if (bit_shift != 0 && i + word_shift + 1 < a.words_.size()) {
      out.words_[i] |= a.words_[i + word_shift + 1] << (64 - bit_shift);
    }
  }
  out.trim();
  return out;
}

void BigUInt::divmod(const BigUInt& a, const BigUInt& b, BigUInt* q,
                     BigUInt* r) {
  CHAM_CHECK_MSG(!b.is_zero(), "division by zero");
  if (a < b) {
    if (q) *q = BigUInt();
    if (r) *r = a;
    return;
  }
  // Binary long division: O(bit_length(a) - bit_length(b)) shifted
  // subtract steps, each O(words). Plenty fast for crypto sizes.
  BigUInt quotient;
  BigUInt rem;
  const int shift = a.bit_length() - b.bit_length();
  BigUInt d = b << shift;
  rem = a;
  quotient.words_.assign((shift + 64) / 64, 0);
  for (int s = shift; s >= 0; --s) {
    if (rem >= d) {
      rem = rem - d;
      quotient.words_[s / 64] |= 1ULL << (s % 64);
    }
    d = d >> 1;
  }
  quotient.trim();
  if (q) *q = std::move(quotient);
  if (r) *r = std::move(rem);
}

BigUInt BigUInt::gcd(BigUInt a, BigUInt b) {
  while (!b.is_zero()) {
    BigUInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUInt BigUInt::lcm(const BigUInt& a, const BigUInt& b) {
  if (a.is_zero() || b.is_zero()) return {};
  return (a / gcd(a, b)) * b;
}

BigUInt BigUInt::mod_inverse(const BigUInt& a, const BigUInt& m) {
  // Extended Euclid tracking only the coefficient of a, with signs
  // handled via parity of step count (coefficients alternate sign).
  CHAM_CHECK(!m.is_zero());
  BigUInt r0 = m, r1 = a % m;
  // t as (value, is_negative)
  BigUInt t0, t1 = BigUInt(1);
  bool neg0 = false, neg1 = false;
  while (!r1.is_zero()) {
    BigUInt q, r2;
    divmod(r0, r1, &q, &r2);
    // t2 = t0 - q*t1  (signed)
    BigUInt qt = q * t1;
    BigUInt t2;
    bool neg2;
    if (neg0 == neg1) {
      // t0 and q*t1 have the same sign.
      if (t0 >= qt) {
        t2 = t0 - qt;
        neg2 = neg0;
      } else {
        t2 = qt - t0;
        neg2 = !neg0;
      }
    } else {
      t2 = t0 + qt;
      neg2 = neg0;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    neg0 = neg1;
    t1 = std::move(t2);
    neg1 = neg2;
  }
  CHAM_CHECK_MSG(r0 == BigUInt(1), "element is not invertible");
  BigUInt result = t0 % m;
  if (neg0 && !result.is_zero()) result = m - result;
  return result;
}

BigUInt BigUInt::mod_pow(const BigUInt& a, const BigUInt& e,
                         const BigUInt& m) {
  CHAM_CHECK(!m.is_zero());
  if (m == BigUInt(1)) return {};
  if (m.is_odd()) {
    Montgomery mont(m);
    return mont.pow(a % m, e);
  }
  // Generic square-and-multiply with divmod reduction.
  BigUInt result(1);
  BigUInt base = a % m;
  for (int i = 0; i < e.bit_length(); ++i) {
    if (e.bit(i)) result = (result * base) % m;
    base = (base * base) % m;
  }
  return result;
}

bool BigUInt::is_probable_prime(const BigUInt& n, Rng& rng, int rounds) {
  if (n < BigUInt(2)) return false;
  for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                29ULL, 31ULL, 37ULL, 41ULL, 43ULL, 47ULL}) {
    if (n == BigUInt(p)) return true;
    if ((n % BigUInt(p)).is_zero()) return false;
  }
  const BigUInt n1 = n - BigUInt(1);
  BigUInt d = n1;
  int r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }
  Montgomery mont(n);
  for (int round = 0; round < rounds; ++round) {
    const BigUInt a =
        BigUInt(2) + random_below(n - BigUInt(4), rng);  // [2, n-2]
    BigUInt x = mont.pow(a, d);
    if (x == BigUInt(1) || x == n1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = (x * x) % n;
      if (x == n1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigUInt BigUInt::random_prime(int bits, Rng& rng) {
  CHAM_CHECK(bits >= 8);
  for (;;) {
    BigUInt c = random_bits(bits, rng);
    c.words_[0] |= 1;  // odd
    if (is_probable_prime(c, rng)) return c;
  }
}

// ---------------------------------------------------------------------------

Montgomery::Montgomery(const BigUInt& modulus) : n_(modulus) {
  CHAM_CHECK_MSG(n_.is_odd(), "Montgomery requires an odd modulus");
  CHAM_CHECK(n_ > BigUInt(1));
  k_ = n_.word_count();
  // n' = -n^{-1} mod 2^64 via Newton iteration.
  const u64 n0 = n_.word(0);
  u64 inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;
  n_prime_ = ~inv + 1;  // -inv mod 2^64
  // R^2 mod n with R = 2^{64k}.
  BigUInt r = BigUInt(1) << static_cast<int>(64 * k_);
  r2_ = (r * r) % n_;
}

BigUInt Montgomery::mul(const BigUInt& a, const BigUInt& b) const {
  // CIOS Montgomery multiplication.
  std::vector<u64> t(k_ + 2, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    const u64 ai = a.word(i);
    // t += ai * b
    u64 carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 cur = static_cast<u128>(ai) * b.word(j) + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[k_]) + carry;
    t[k_] = static_cast<u64>(cur);
    t[k_ + 1] = static_cast<u64>(cur >> 64);
    // m = t[0] * n' mod 2^64; t += m*n; t >>= 64
    const u64 m = t[0] * n_prime_;
    carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 c2 = static_cast<u128>(m) * n_.word(j) + t[j] + carry;
      if (j == 0) {
        carry = static_cast<u64>(c2 >> 64);  // low word becomes zero
      } else {
        t[j - 1] = static_cast<u64>(c2);
        carry = static_cast<u64>(c2 >> 64);
      }
    }
    cur = static_cast<u128>(t[k_]) + carry;
    t[k_ - 1] = static_cast<u64>(cur);
    t[k_] = t[k_ + 1] + static_cast<u64>(cur >> 64);
    t[k_ + 1] = 0;
  }
  BigUInt out;
  out.words_.assign(t.begin(), t.begin() + k_ + 1);
  out.trim();
  if (out >= n_) out = out - n_;
  return out;
}

BigUInt Montgomery::to_mont(const BigUInt& a) const { return mul(a % n_, r2_); }

BigUInt Montgomery::from_mont(const BigUInt& a) const {
  return mul(a, BigUInt(1));
}

BigUInt Montgomery::pow(const BigUInt& base, const BigUInt& exp) const {
  BigUInt result = to_mont(BigUInt(1));
  BigUInt b = to_mont(base);
  const int bits = exp.bit_length();
  for (int i = bits - 1; i >= 0; --i) {
    result = mul(result, result);
    if (exp.bit(i)) result = mul(result, b);
  }
  return from_mont(result);
}

}  // namespace cham
