#include "bignum/crt.h"

#include <algorithm>

#include "common/check.h"
#include "simd/kernels.h"

namespace cham {

CrtSpans::CrtSpans(std::vector<Modulus> moduli)
    : moduli_(std::move(moduli)) {
  const std::size_t k = moduli_.size();
  CHAM_CHECK_MSG(k > 0, "CRT chain needs at least one modulus");
  q_barrett_.resize(k);
  r64_.resize(k);
  inv_.resize(k);
  partial_.resize(k);
  shift_.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    const Modulus& qj = moduli_[j];
    const u64 qv = qj.value();
    q_barrett_[j] = static_cast<u64>((static_cast<u128>(1) << 64) / qv);
    r64_[j] = make_shoup(
        static_cast<u64>((static_cast<u128>(1) << 64) % qv), qj);
    u64 prod = 1;  // Π_{l<j} q_l mod q_j
    partial_[j].resize(j + 1);
    partial_[j][0] = make_shoup(1 % qv, qj);
    u128 shift = 1;
    for (std::size_t l = 0; l < j; ++l) {
      prod = qj.mul(prod, moduli_[l].value() % qv);
      partial_[j][l + 1] = make_shoup(prod, qj);
      shift *= moduli_[l].value();
    }
    shift_[j] = shift;
    inv_[j] = make_shoup(j == 0 ? 1 % qv : qj.inv(prod), qj);
    total_ *= qv;
  }
}

u128 CrtSpans::compose_value(const u64* residues) const {
  // Garner mixed-radix: x = y_0 + y_1 q_0 + y_2 q_0 q_1 + ...
  const std::size_t k = moduli_.size();
  u128 value = 0;
  u64 y[64];
  CHAM_CHECK(k <= 64);
  for (std::size_t j = 0; j < k; ++j) {
    const Modulus& qj = moduli_[j];
    const u64 qv = qj.value();
    // acc = (y_0 P_0 + ... + y_{j-1} P_{j-1}) mod q_j
    u64 acc = 0;
    for (std::size_t l = 0; l < j; ++l) {
      acc = qj.add(acc, mul_shoup(y[l] % qv, partial_[j][l], qv));
    }
    const u64 xj = residues[j] % qv;
    y[j] = mul_shoup(qj.sub(xj, acc), inv_[j], qv);
    value += static_cast<u128>(y[j]) * shift_[j];
  }
  return value;
}

void CrtSpans::decompose_value(u128 value, u64* residues_out) const {
  for (std::size_t j = 0; j < moduli_.size(); ++j) {
    residues_out[j] = static_cast<u64>(value % moduli_[j].value());
  }
}

void CrtSpans::compose_spans(const u64* residues, std::size_t stride,
                             std::size_t n, u128* out) const {
  compose_spans(simd::active(), residues, stride, n, out);
}

void CrtSpans::compose_spans(const simd::Kernels& k, const u64* residues,
                             std::size_t stride, std::size_t n,
                             u128* out) const {
  const std::size_t nm = moduli_.size();
  if (nm == 1) {
    for (std::size_t i = 0; i < n; ++i) out[i] = residues[i];
    return;
  }
  // Same Garner recursion as compose_value, but each mixed-radix digit
  // y_j is a whole span: j-1 Barrett-reduce + Shoup-MAC sweeps build the
  // partial sum, one sub + Shoup-mul sweep finishes the digit. The only
  // per-coefficient work left is the final shift-and-add into 128 bits.
  simd::AlignedU64Vec y(nm * n);
  simd::AlignedU64Vec acc(n);
  simd::AlignedU64Vec tmp(n);
  std::copy(residues, residues + n, y.data());
  for (std::size_t j = 1; j < nm; ++j) {
    const u64 qv = moduli_[j].value();
    const u64 qb = q_barrett_[j];
    std::fill(acc.data(), acc.data() + n, 0);
    for (std::size_t l = 0; l < j; ++l) {
      // y_l < q_l may exceed q_j (and the 52-bit product window), so
      // reduce the span first; the MAC then stays in its documented
      // domain on every backend.
      k.barrett_reduce(y.data() + l * n, tmp.data(), n, qv, qb);
      k.mul_scalar_shoup_acc(tmp.data(), partial_[j][l].operand,
                             partial_[j][l].quotient, acc.data(), n, qv);
    }
    k.sub(residues + j * stride, acc.data(), tmp.data(), n, qv);
    k.mul_scalar_shoup(tmp.data(), inv_[j].operand, inv_[j].quotient,
                       y.data() + j * n, n, qv);
  }
  for (std::size_t i = 0; i < n; ++i) {
    u128 value = y[i];
    for (std::size_t j = 1; j < nm; ++j) {
      value += static_cast<u128>(y[j * n + i]) * shift_[j];
    }
    out[i] = value;
  }
}

void CrtSpans::reduce_words_mod(std::size_t j, const u64* hi, const u64* lo,
                                u64* out, std::size_t n,
                                u64* scratch) const {
  reduce_words_mod(simd::active(), j, hi, lo, out, n, scratch);
}

void CrtSpans::reduce_words_mod(const simd::Kernels& k, std::size_t j,
                                const u64* hi, const u64* lo, u64* out,
                                std::size_t n, u64* scratch) const {
  const u64 qv = moduli_[j].value();
  const u64 qb = q_barrett_[j];
  // (hi·2^64 + lo) mod q = (hi mod q)·(2^64 mod q) + (lo mod q) mod q.
  k.barrett_reduce(hi, out, n, qv, qb);
  k.mul_scalar_shoup(out, r64_[j].operand, r64_[j].quotient, out, n, qv);
  k.barrett_reduce(lo, scratch, n, qv, qb);
  k.add(out, scratch, out, n, qv);
}

void CrtSpans::decompose_spans(const u128* values, std::size_t n,
                               u64* residues_out, std::size_t stride) const {
  decompose_spans(simd::active(), values, n, residues_out, stride);
}

void CrtSpans::decompose_spans(const simd::Kernels& k, const u128* values,
                               std::size_t n, u64* residues_out,
                               std::size_t stride) const {
  simd::AlignedU64Vec hi(n);
  simd::AlignedU64Vec lo(n);
  simd::AlignedU64Vec scratch(n);
  for (std::size_t i = 0; i < n; ++i) {
    hi[i] = static_cast<u64>(values[i] >> 64);
    lo[i] = static_cast<u64>(values[i]);
  }
  for (std::size_t j = 0; j < moduli_.size(); ++j) {
    reduce_words_mod(k, j, hi.data(), lo.data(),
                     residues_out + j * stride, n, scratch.data());
  }
}

}  // namespace cham
