// AVX-512-IFMA backend: 8 u64 lanes, 52-bit limbs. vpmadd52luq /
// vpmadd52huq give a single-instruction 52x52-bit multiply-add, and the
// backend runs one of two limb disciplines per call depending on q:
//
//   * q < kIfmaQBound — single-word: operands fit one 52-bit limb, the
//     Shoup product drops the four-instruction emulated 64-bit mulhi for
//     one madd52hi (quotient estimate) plus two madd52lo (low products).
//     The Ifma traits inherit everything structural from the shared
//     Avx512 body and override only the limb-width seam: prep_quo shifts
//     the loaded 64-bit Shoup quotients right by 12 (the identity
//     floor(quo64 / 2^12) = floor(w·2^52 / q) means no separate tables),
//     shoup_lazy runs on the 52-bit window, and loop tails route through
//     ScalarRef52.
//
//   * q >= kIfmaQBound — double-word: each operand is two 52-bit limbs
//     (x = lo52(x) + (x >> 52)·2^52) and the EXACT 64-bit mulhi is
//     recomposed from six vpmadd52 half products (see
//     kernels_scalar104.h for the identity and the carry-freeness
//     proof). The Ifma104 traits override only mulhi/shoup_lazy on top
//     of Avx512, so the shared VecKernels bodies — including the
//     template rescale_round and barrett_reduce, which call V::mulhi
//     directly — pick up the cheaper recomposition automatically. Loop
//     tails route through ScalarRef104 (bit-identical to the 64-bit
//     scalar reference, so the level keeps the dispatch table's exact
//     output contract at every q < 2^62).
//
// Before this double-word path existed the wide-q gates delegated to a
// VecKernels<Avx512> instantiation in this TU; nothing delegates now,
// but every wide-q call is still counted (simd.ifma.delegated — the
// name predates the dw path and now means "left the single-word path")
// so datapath selection stays observable in CHAM-METRICS.
#include "simd/tables.h"

#ifdef CHAM_SIMD_AVX512IFMA

#include <immintrin.h>

#include "obs/metrics.h"
#include "simd/kernels_scalar.h"
#include "simd/kernels_scalar104.h"
#include "simd/kernels_scalar52.h"

namespace cham {
namespace simd {

namespace {

#include "simd/traits_avx512.inl"

struct Ifma : Avx512 {
  using ScalarRef = ScalarRef52;

  // quo52 = floor(w·2^52 / q) derived in-register from the 64-bit table.
  static inline reg prep_quo(reg quo) { return _mm512_srli_epi64(quo, 12); }

  // x·w mod q in [0, 2q) on 52-bit limbs: hi = floor(x·quo52 / 2^52),
  // r = (x·w - hi·q) mod 2^52. Requires x < 2^52 and q < 2^50 (so
  // r < 2q < 2^51 survives the mod-2^52 subtraction intact). The
  // madd52 operands are hardware-masked to 52 bits.
  static inline reg shoup_lazy(reg x, reg op, reg quo52, reg q) {
    const reg zero = _mm512_setzero_si512();
    const reg hi = _mm512_madd52hi_epu64(zero, x, quo52);
    const reg r = _mm512_sub_epi64(_mm512_madd52lo_epu64(zero, x, op),
                                   _mm512_madd52lo_epu64(zero, hi, q));
    return _mm512_and_si512(r, set1((1ULL << 52) - 1));
  }
};

// Double-word traits for q >= kIfmaQBound: exact 64-bit arithmetic with
// the mulhi recomposed from 52-bit half products. Everything else —
// mullo (vpmullq), csub, the lane shuffles — is the plain Avx512
// discipline, so overriding mulhi alone upgrades every VecKernels body.
struct Ifma104 : Avx512 {
  // Exactness makes the scalar-tail choice free: the 64-bit scalar
  // reference computes the very same values as the limb recomposition
  // (kernels_scalar104 proves the identity), and its one u128 multiply
  // is ~6x cheaper than the recomposed scalar mulhi — the NTT's
  // small-count stages (t = 4 runs the whole sweep through the tails)
  // would otherwise be double-word-scalar bound.
  using ScalarRef = ScalarRef64;

  // Exact high 64 bits of a*b. With a = a0 + a1·2^52 (a1 = a>>52 <
  // 2^12), b likewise:
  //   t = hi52(a0b0) + lo52(a1b0) + lo52(a0b1)        (< 2^54)
  //   c = a1·b1 + hi52(a1b0) + hi52(a0b1)             (< 2^25)
  //   mulhi64(a,b) = (c << 40) + (t >> 12)            exactly.
  // The madd52 operands are hardware-masked to their low 52 bits, so
  // only the two >>52 shifts exposing the high limbs are explicit.
  // Six madd52 + four shift/adds vs the sixteen-op 32x32 recomposition
  // in the Avx512 base — see kernels_scalar104.h for the proof that no
  // carry is dropped. (Splitting the 3-deep madd52 accumulation chains
  // into 2-deep pairs joined by adds was measured slower: the butterfly
  // sweeps are throughput-bound on the FMA ports, so the two extra uops
  // cost more than the shorter critical path saves.)
  static inline reg mulhi(reg a, reg b) {
    const reg zero = _mm512_setzero_si512();
    const reg a1 = _mm512_srli_epi64(a, 52);
    const reg b1 = _mm512_srli_epi64(b, 52);
    reg t = _mm512_madd52hi_epu64(zero, a, b);
    t = _mm512_madd52lo_epu64(t, a1, b);
    t = _mm512_madd52lo_epu64(t, a, b1);
    reg c = _mm512_madd52lo_epu64(zero, a1, b1);
    c = _mm512_madd52hi_epu64(c, a1, b);
    c = _mm512_madd52hi_epu64(c, a, b1);
    return _mm512_add_epi64(_mm512_slli_epi64(c, 40), _mm512_srli_epi64(t, 12));
  }

  // The standard 64-bit Harvey lazy product on the recomposed mulhi —
  // bit-identical to the Avx512/scalar path in every intermediate
  // (the quotient estimate is exact, not approximate).
  static inline reg shoup_lazy(reg x, reg op, reg quo, reg q) {
    return sub(mullo(x, op), mullo(mulhi(x, quo), q));
  }
};

}  // namespace

}  // namespace simd
}  // namespace cham

#include "simd/kernels_vec.inl"

namespace cham {
namespace simd {

namespace {

using K52 = VecKernels<Ifma>;
using K104 = VecKernels<Ifma104>;

// Per-call datapath gate: single-word when 4q fits the IFMA operand
// window, double-word otherwise. Wide-q traffic is counted so the
// metrics dump shows how much work left the single-word path — but in
// thread-local batches: one NTT makes hundreds of small-count kernel
// calls, and a lock-prefixed add per call (~20 cycles) is measurable
// against the butterflies themselves. The registry counter therefore
// lags by up to kFlush-1 calls per thread; it reports traffic volume,
// not an exact call count.
inline bool use52(u64 q) {
  if (ifma_eligible(q)) return true;
  constexpr u64 kFlush = 64;
  thread_local u64 pending = 0;
  if (++pending >= kFlush) {
    static obs::Counter& delegated =
        obs::MetricsRegistry::global().counter("simd.ifma.delegated");
    delegated.add(pending);
    pending = 0;
  }
  return false;
}

void mul_shoup(const u64* x, const u64* w_op, const u64* w_quo, u64* out,
               std::size_t n, u64 q) {
  (use52(q) ? K52::mul_shoup : K104::mul_shoup)(x, w_op, w_quo, out, n, q);
}

// Dedicated double-word MAC: folding the lazy product (< 2q) straight
// into the reduced accumulator and correcting the sum from [0, 3q) with
// two conditional subtractions saves the separate full reduction of the
// product that the template body (shoup full + add + csub) pays. Final
// values are identical — both are fully reduced.
void dw_mul_shoup_acc(const u64* x, const u64* w_op, const u64* w_quo,
                      u64* out, std::size_t n, u64 q) {
  using V = Ifma104;
  // csub(a, m) = a >= m ? a - m : a (the wrapped difference is huge, so
  // umin picks the unwrapped value) — same helper VecKernels uses.
  const auto csub = [](V::reg a, V::reg m) { return V::umin(a, V::sub(a, m)); };
  const V::reg vq = V::set1(q);
  const V::reg v2q = V::set1(q << 1);
  std::size_t i = 0;
  for (; i + 2 * V::W <= n; i += 2 * V::W) {
    const V::reg r0 = V::shoup_lazy(V::load(x + i), V::load(w_op + i),
                                    V::load(w_quo + i), vq);
    const V::reg r1 =
        V::shoup_lazy(V::load(x + i + V::W), V::load(w_op + i + V::W),
                      V::load(w_quo + i + V::W), vq);
    V::reg s0 = V::add(V::load(out + i), r0);
    V::reg s1 = V::add(V::load(out + i + V::W), r1);
    s0 = csub(s0, v2q);
    s1 = csub(s1, v2q);
    V::store(out + i, csub(s0, vq));
    V::store(out + i + V::W, csub(s1, vq));
  }
  for (; i + V::W <= n; i += V::W) {
    const V::reg r = V::shoup_lazy(V::load(x + i), V::load(w_op + i),
                                   V::load(w_quo + i), vq);
    V::reg s = V::add(V::load(out + i), r);
    s = csub(s, v2q);
    V::store(out + i, csub(s, vq));
  }
  if (i < n) {
    ScalarRef64::mul_shoup_acc(x + i, w_op + i, w_quo + i, out + i, n - i,
                               q);
  }
}

void mul_shoup_acc(const u64* x, const u64* w_op, const u64* w_quo,
                   u64* out, std::size_t n, u64 q) {
  (use52(q) ? K52::mul_shoup_acc : dw_mul_shoup_acc)(x, w_op, w_quo, out, n,
                                                     q);
}

// Same two-csub accumulation for the fixed-scalar MAC (digit lifting's
// inner product runs on this shape).
void dw_mul_scalar_shoup_acc(const u64* x, u64 op, u64 quo, u64* out,
                             std::size_t n, u64 q) {
  using V = Ifma104;
  const auto csub = [](V::reg a, V::reg m) { return V::umin(a, V::sub(a, m)); };
  const V::reg vq = V::set1(q);
  const V::reg v2q = V::set1(q << 1);
  const V::reg vop = V::set1(op);
  const V::reg vquo = V::set1(quo);
  std::size_t i = 0;
  for (; i + 2 * V::W <= n; i += 2 * V::W) {
    const V::reg r0 = V::shoup_lazy(V::load(x + i), vop, vquo, vq);
    const V::reg r1 = V::shoup_lazy(V::load(x + i + V::W), vop, vquo, vq);
    V::reg s0 = V::add(V::load(out + i), r0);
    V::reg s1 = V::add(V::load(out + i + V::W), r1);
    s0 = csub(s0, v2q);
    s1 = csub(s1, v2q);
    V::store(out + i, csub(s0, vq));
    V::store(out + i + V::W, csub(s1, vq));
  }
  for (; i + V::W <= n; i += V::W) {
    const V::reg r = V::shoup_lazy(V::load(x + i), vop, vquo, vq);
    V::reg s = V::add(V::load(out + i), r);
    s = csub(s, v2q);
    V::store(out + i, csub(s, vq));
  }
  if (i < n) {
    ScalarRef64::mul_scalar_shoup_acc(x + i, op, quo, out + i, n - i, q);
  }
}

void mul_scalar_shoup(const u64* x, u64 op, u64 quo, u64* out,
                      std::size_t n, u64 q) {
  (use52(q) ? K52::mul_scalar_shoup : K104::mul_scalar_shoup)(x, op, quo,
                                                              out, n, q);
}

void mul_scalar_shoup_acc(const u64* x, u64 op, u64 quo, u64* out,
                          std::size_t n, u64 q) {
  (use52(q) ? K52::mul_scalar_shoup_acc : dw_mul_scalar_shoup_acc)(
      x, op, quo, out, n, q);
}

void ntt_fwd_bfly(u64* x, u64* y, std::size_t count, u64 w_op, u64 w_quo,
                  u64 q) {
  (use52(q) ? K52::ntt_fwd_bfly : K104::ntt_fwd_bfly)(x, y, count, w_op,
                                                      w_quo, q);
}

void ntt_fwd_dit4(u64* x0, u64* x1, u64* x2, u64* x3, std::size_t count,
                  u64 wa_op, u64 wa_quo, u64 wb0_op, u64 wb0_quo,
                  u64 wb1_op, u64 wb1_quo, u64 q) {
  (use52(q) ? K52::ntt_fwd_dit4 : K104::ntt_fwd_dit4)(
      x0, x1, x2, x3, count, wa_op, wa_quo, wb0_op, wb0_quo, wb1_op,
      wb1_quo, q);
}

void ntt_inv_bfly(u64* x, u64* y, std::size_t count, u64 w_op, u64 w_quo,
                  u64 q) {
  (use52(q) ? K52::ntt_inv_bfly : K104::ntt_inv_bfly)(x, y, count, w_op,
                                                      w_quo, q);
}

void ntt_inv_last(u64* x, u64* y, std::size_t count, u64 ninv_op,
                  u64 ninv_quo, u64 nw_op, u64 nw_quo, u64 q) {
  (use52(q) ? K52::ntt_inv_last : K104::ntt_inv_last)(
      x, y, count, ninv_op, ninv_quo, nw_op, nw_quo, q);
}

void ntt_fwd_tail(u64* a, std::size_t n, const u64* wa_op,
                  const u64* wa_quo, const u64* wb_op, const u64* wb_quo,
                  u64 q) {
  (use52(q) ? K52::ntt_fwd_tail : K104::ntt_fwd_tail)(a, n, wa_op, wa_quo,
                                                      wb_op, wb_quo, q);
}

void ntt_inv_tail(u64* a, std::size_t n, const u64* w1_op,
                  const u64* w1_quo, const u64* w2_op, const u64* w2_quo,
                  u64 q) {
  (use52(q) ? K52::ntt_inv_tail : K104::ntt_inv_tail)(a, n, w1_op, w1_quo,
                                                      w2_op, w2_quo, q);
}

void cg_fwd_stage(const u64* src, u64* dst, std::size_t half,
                  const u64* w_op, const u64* w_quo, std::size_t mask,
                  u64 q) {
  (use52(q) ? K52::cg_fwd_stage : K104::cg_fwd_stage)(src, dst, half, w_op,
                                                      w_quo, mask, q);
}

void cg_inv_stage(const u64* src, u64* dst, std::size_t half,
                  const u64* w_op, const u64* w_quo, std::size_t mask,
                  u64 q) {
  (use52(q) ? K52::cg_inv_stage : K104::cg_inv_stage)(src, dst, half, w_op,
                                                      w_quo, mask, q);
}

void rescale_round(const u64* xl, const u64* xp, u64* out, std::size_t n,
                   u64 pv, u64 q, u64 q_barrett, u64 pinv_op,
                   u64 pinv_quo) {
  (use52(q) ? K52::rescale_round : K104::rescale_round)(
      xl, xp, out, n, pv, q, q_barrett, pinv_op, pinv_quo);
}

}  // namespace

const Kernels* avx512ifma_table() {
  static const Kernels table = {
      K104::add,
      K104::sub,
      K104::negate,
      mul_shoup,
      mul_shoup_acc,
      mul_scalar_shoup,
      mul_scalar_shoup_acc,
      ntt_fwd_bfly,
      ntt_fwd_dit4,
      ntt_inv_bfly,
      ntt_inv_last,
      ntt_fwd_tail,
      ntt_inv_tail,
      cg_fwd_stage,
      cg_inv_stage,
      K104::permute,
      K104::neg_rev,
      rescale_round,
      // Exact at any q — the Barrett step runs on the recomposed 64-bit
      // mulhi, which is both exact and cheaper than the 32x32 emulation,
      // so no q gate is needed.
      K104::barrett_reduce,
  };
  return &table;
}

}  // namespace simd
}  // namespace cham

#else  // !CHAM_SIMD_AVX512IFMA

namespace cham {
namespace simd {

const Kernels* avx512ifma_table() { return nullptr; }

}  // namespace simd
}  // namespace cham

#endif
