// AVX-512-IFMA backend: 8 u64 lanes, 52-bit limbs. vpmadd52luq /
// vpmadd52huq give a single-instruction 52x52-bit multiply-add, so the
// Shoup product drops the four-instruction emulated 64-bit mulhi for
// one madd52hi (quotient estimate) plus two madd52lo (low products).
//
// The Ifma traits inherit everything structural from the shared Avx512
// body and override only the limb-width seam: prep_quo shifts the
// loaded 64-bit Shoup quotients right by 12 (the identity
// floor(quo64 / 2^12) = floor(w·2^52 / q) means no separate tables),
// shoup_lazy runs on the 52-bit window, and loop tails route through
// ScalarRef52 so tails stay bit-exact with the vector body.
//
// Domain: the 52-bit path needs q < kIfmaQBound (2^50) so that lazy
// values < 4q fit the hardware's 52-bit operand mask. Every exported
// kernel checks q once and falls back to the 64-bit VecKernels<Avx512>
// instantiation in this TU otherwise, preserving the full q < 2^62
// contract of the dispatch table.
#include "simd/tables.h"

#ifdef CHAM_SIMD_AVX512IFMA

#include <immintrin.h>

#include "simd/kernels_scalar.h"
#include "simd/kernels_scalar52.h"

namespace cham {
namespace simd {

namespace {

#include "simd/traits_avx512.inl"

struct Ifma : Avx512 {
  using ScalarRef = ScalarRef52;

  // quo52 = floor(w·2^52 / q) derived in-register from the 64-bit table.
  static inline reg prep_quo(reg quo) { return _mm512_srli_epi64(quo, 12); }

  // x·w mod q in [0, 2q) on 52-bit limbs: hi = floor(x·quo52 / 2^52),
  // r = (x·w - hi·q) mod 2^52. Requires x < 2^52 and q < 2^50 (so
  // r < 2q < 2^51 survives the mod-2^52 subtraction intact). The
  // madd52 operands are hardware-masked to 52 bits.
  static inline reg shoup_lazy(reg x, reg op, reg quo52, reg q) {
    const reg zero = _mm512_setzero_si512();
    const reg hi = _mm512_madd52hi_epu64(zero, x, quo52);
    const reg r = _mm512_sub_epi64(_mm512_madd52lo_epu64(zero, x, op),
                                   _mm512_madd52lo_epu64(zero, hi, q));
    return _mm512_and_si512(r, set1((1ULL << 52) - 1));
  }
};

}  // namespace

}  // namespace simd
}  // namespace cham

#include "simd/kernels_vec.inl"

namespace cham {
namespace simd {

namespace {

using K52 = VecKernels<Ifma>;
using K64 = VecKernels<Avx512>;

// q-gate wrappers: 52-bit path when 4q fits the IFMA operand window,
// 64-bit AVX-512 path (same TU, internal instantiation) otherwise.
void mul_shoup(const u64* x, const u64* w_op, const u64* w_quo, u64* out,
               std::size_t n, u64 q) {
  (q < kIfmaQBound ? K52::mul_shoup : K64::mul_shoup)(x, w_op, w_quo, out,
                                                      n, q);
}

void mul_shoup_acc(const u64* x, const u64* w_op, const u64* w_quo,
                   u64* out, std::size_t n, u64 q) {
  (q < kIfmaQBound ? K52::mul_shoup_acc : K64::mul_shoup_acc)(
      x, w_op, w_quo, out, n, q);
}

void mul_scalar_shoup(const u64* x, u64 op, u64 quo, u64* out,
                      std::size_t n, u64 q) {
  (q < kIfmaQBound ? K52::mul_scalar_shoup : K64::mul_scalar_shoup)(
      x, op, quo, out, n, q);
}

void mul_scalar_shoup_acc(const u64* x, u64 op, u64 quo, u64* out,
                          std::size_t n, u64 q) {
  (q < kIfmaQBound ? K52::mul_scalar_shoup_acc : K64::mul_scalar_shoup_acc)(
      x, op, quo, out, n, q);
}

void ntt_fwd_bfly(u64* x, u64* y, std::size_t count, u64 w_op, u64 w_quo,
                  u64 q) {
  (q < kIfmaQBound ? K52::ntt_fwd_bfly : K64::ntt_fwd_bfly)(x, y, count,
                                                            w_op, w_quo, q);
}

void ntt_fwd_dit4(u64* x0, u64* x1, u64* x2, u64* x3, std::size_t count,
                  u64 wa_op, u64 wa_quo, u64 wb0_op, u64 wb0_quo,
                  u64 wb1_op, u64 wb1_quo, u64 q) {
  (q < kIfmaQBound ? K52::ntt_fwd_dit4 : K64::ntt_fwd_dit4)(
      x0, x1, x2, x3, count, wa_op, wa_quo, wb0_op, wb0_quo, wb1_op,
      wb1_quo, q);
}

void ntt_inv_bfly(u64* x, u64* y, std::size_t count, u64 w_op, u64 w_quo,
                  u64 q) {
  (q < kIfmaQBound ? K52::ntt_inv_bfly : K64::ntt_inv_bfly)(x, y, count,
                                                            w_op, w_quo, q);
}

void ntt_inv_last(u64* x, u64* y, std::size_t count, u64 ninv_op,
                  u64 ninv_quo, u64 nw_op, u64 nw_quo, u64 q) {
  (q < kIfmaQBound ? K52::ntt_inv_last : K64::ntt_inv_last)(
      x, y, count, ninv_op, ninv_quo, nw_op, nw_quo, q);
}

void ntt_fwd_tail(u64* a, std::size_t n, const u64* wa_op,
                  const u64* wa_quo, const u64* wb_op, const u64* wb_quo,
                  u64 q) {
  (q < kIfmaQBound ? K52::ntt_fwd_tail : K64::ntt_fwd_tail)(
      a, n, wa_op, wa_quo, wb_op, wb_quo, q);
}

void ntt_inv_tail(u64* a, std::size_t n, const u64* w1_op,
                  const u64* w1_quo, const u64* w2_op, const u64* w2_quo,
                  u64 q) {
  (q < kIfmaQBound ? K52::ntt_inv_tail : K64::ntt_inv_tail)(
      a, n, w1_op, w1_quo, w2_op, w2_quo, q);
}

void cg_fwd_stage(const u64* src, u64* dst, std::size_t half,
                  const u64* w_op, const u64* w_quo, std::size_t mask,
                  u64 q) {
  (q < kIfmaQBound ? K52::cg_fwd_stage : K64::cg_fwd_stage)(
      src, dst, half, w_op, w_quo, mask, q);
}

void cg_inv_stage(const u64* src, u64* dst, std::size_t half,
                  const u64* w_op, const u64* w_quo, std::size_t mask,
                  u64 q) {
  (q < kIfmaQBound ? K52::cg_inv_stage : K64::cg_inv_stage)(
      src, dst, half, w_op, w_quo, mask, q);
}

void rescale_round(const u64* xl, const u64* xp, u64* out, std::size_t n,
                   u64 pv, u64 q, u64 q_barrett, u64 pinv_op,
                   u64 pinv_quo) {
  (q < kIfmaQBound ? K52::rescale_round : K64::rescale_round)(
      xl, xp, out, n, pv, q, q_barrett, pinv_op, pinv_quo);
}

}  // namespace

const Kernels* avx512ifma_table() {
  static const Kernels table = {
      K64::add,
      K64::sub,
      K64::negate,
      mul_shoup,
      mul_shoup_acc,
      mul_scalar_shoup,
      mul_scalar_shoup_acc,
      ntt_fwd_bfly,
      ntt_fwd_dit4,
      ntt_inv_bfly,
      ntt_inv_last,
      ntt_fwd_tail,
      ntt_inv_tail,
      cg_fwd_stage,
      cg_inv_stage,
      K64::permute,
      K64::neg_rev,
      rescale_round,
      // No Shoup multiply inside: the Barrett step always runs on the
      // 64-bit mulhi, so the 64-bit instantiation is exact at any q.
      K64::barrett_reduce,
  };
  return &table;
}

}  // namespace simd
}  // namespace cham

#else  // !CHAM_SIMD_AVX512IFMA

namespace cham {
namespace simd {

const Kernels* avx512ifma_table() { return nullptr; }

}  // namespace simd
}  // namespace cham

#endif
