// AVX-512 backend: 8 u64 lanes, 64-bit limbs. The traits body lives in
// traits_avx512.inl so the avx512ifma TU can share it; it is included
// inside an anonymous namespace on purpose (see the note there).
#include "simd/tables.h"

#ifdef CHAM_SIMD_AVX512

#include <immintrin.h>

#include "simd/kernels_scalar.h"

namespace cham {
namespace simd {

namespace {

#include "simd/traits_avx512.inl"

}  // namespace

}  // namespace simd
}  // namespace cham

#include "simd/kernels_vec.inl"

namespace cham {
namespace simd {

const Kernels* avx512_table() {
  using K = VecKernels<Avx512>;
  static const Kernels table = {
      K::add,
      K::sub,
      K::negate,
      K::mul_shoup,
      K::mul_shoup_acc,
      K::mul_scalar_shoup,
      K::mul_scalar_shoup_acc,
      K::ntt_fwd_bfly,
      K::ntt_fwd_dit4,
      K::ntt_inv_bfly,
      K::ntt_inv_last,
      K::ntt_fwd_tail,
      K::ntt_inv_tail,
      K::cg_fwd_stage,
      K::cg_inv_stage,
      K::permute,
      K::neg_rev,
      K::rescale_round,
      K::barrett_reduce,
  };
  return &table;
}

}  // namespace simd
}  // namespace cham

#else  // !CHAM_SIMD_AVX512

namespace cham {
namespace simd {

const Kernels* avx512_table() { return nullptr; }

}  // namespace simd
}  // namespace cham

#endif
