// Internal: per-backend kernel tables. Each TU returns its table, or
// nullptr when the backend is compiled out (CHAM_SIMD=OFF or the
// toolchain lacks the ISA flags). Only dispatch.cc and the backends
// include this.
#pragma once

#include "simd/kernels.h"

namespace cham {
namespace simd {

const Kernels* scalar_table();
const Kernels* avx2_table();
const Kernels* avx512_table();
const Kernels* avx512ifma_table();

}  // namespace simd
}  // namespace cham
