// AVX-512 traits body, shared by the avx512 and avx512ifma translation
// units. Include this INSIDE an anonymous namespace in cham::simd — the
// two TUs are compiled with different -m flags, and internal linkage is
// what keeps their VecKernels instantiations from being merged by the
// linker (a merge could hand a non-IFMA CPU code compiled with
// -mavx512ifma).
//
// 8 u64 lanes. Requires F (512-bit integer ops, gathers, mask registers)
// and DQ (native 64-bit mullo). Unsigned compares, min, and lane
// permutes are native, so unlike AVX2 nothing is emulated except mulhi,
// which still composes four 32x32 products.

struct Avx512 {
  using reg = __m512i;
  using mask = __mmask8;
  using ScalarRef = ScalarRef64;
  static constexpr std::size_t W = 8;

  static inline reg load(const u64* p) { return _mm512_loadu_si512(p); }
  static inline void store(u64* p, reg v) { _mm512_storeu_si512(p, v); }
  static inline reg set1(u64 x) {
    return _mm512_set1_epi64(static_cast<long long>(x));
  }
  static inline reg add(reg a, reg b) { return _mm512_add_epi64(a, b); }
  static inline reg sub(reg a, reg b) { return _mm512_sub_epi64(a, b); }
  static inline reg mullo(reg a, reg b) { return _mm512_mullo_epi64(a, b); }

  static inline reg mulhi(reg a, reg b) {
    const reg a_hi = _mm512_srli_epi64(a, 32);
    const reg b_hi = _mm512_srli_epi64(b, 32);
    const reg ll = _mm512_mul_epu32(a, b);
    const reg lh = _mm512_mul_epu32(a, b_hi);
    const reg hl = _mm512_mul_epu32(a_hi, b);
    const reg hh = _mm512_mul_epu32(a_hi, b_hi);
    const reg m32 = _mm512_set1_epi64(0xFFFFFFFFll);
    const reg mid = _mm512_add_epi64(
        _mm512_add_epi64(_mm512_srli_epi64(ll, 32), _mm512_and_si512(lh, m32)),
        _mm512_and_si512(hl, m32));
    return _mm512_add_epi64(
        _mm512_add_epi64(hh, _mm512_srli_epi64(lh, 32)),
        _mm512_add_epi64(_mm512_srli_epi64(hl, 32),
                         _mm512_srli_epi64(mid, 32)));
  }

  // 64-bit limbs: the loaded Shoup quotient is used as-is.
  static inline reg prep_quo(reg quo) { return quo; }

  // x·w mod q in [0, 2q): Harvey lazy product on the 64-bit quotient
  // estimate. Valid for any 64-bit x (q < 2^62).
  static inline reg shoup_lazy(reg x, reg op, reg quo, reg q) {
    return sub(mullo(x, op), mullo(mulhi(x, quo), q));
  }

  static inline mask gt(reg a, reg b) {
    return _mm512_cmpgt_epu64_mask(a, b);
  }
  static inline reg umin(reg a, reg b) { return _mm512_min_epu64(a, b); }
  static inline mask eq0(reg v) {
    return _mm512_cmpeq_epi64_mask(v, _mm512_setzero_si512());
  }
  static inline reg blend(mask m, reg t, reg f) {
    return _mm512_mask_blend_epi64(m, f, t);
  }
  static inline reg band(reg a, reg b) { return _mm512_and_si512(a, b); }
  static inline reg bor(reg a, reg b) { return _mm512_or_si512(a, b); }
  static inline reg bandn(reg m, reg v) { return _mm512_andnot_si512(m, v); }

  static inline reg gather(const u64* base, reg idx) {
    return _mm512_i64gather_epi64(idx, base, 8);
  }
  static inline reg reverse(reg v) {
    const reg rev = _mm512_set_epi64(0, 1, 2, 3, 4, 5, 6, 7);
    return _mm512_permutexvar_epi64(rev, v);
  }

  // Lane i <-> lane i^1: the two u64 halves of each 128-bit lane swap,
  // expressed as a 32-bit in-lane shuffle (cheap, port-5 only).
  static inline reg swap1(reg v) {
    return _mm512_shuffle_epi32(v, _MM_PERM_BADC);
  }
  // Lane i <-> lane i^2: swap the u64 pairs within each 256-bit half.
  static inline reg swap2(reg v) {
    return _mm512_permutex_epi64(v, 0x4E);
  }
  // [p0,p0,p1,p1,p2,p2,p3,p3] from four contiguous values.
  static inline reg rep2_load(const u64* p) {
    const reg idx = _mm512_set_epi64(3, 3, 2, 2, 1, 1, 0, 0);
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    return _mm512_permutexvar_epi64(idx, _mm512_zextsi256_si512(v));
  }
  // [p0,p0,p0,p0,p1,p1,p1,p1] from two contiguous values.
  static inline reg rep4_load(const u64* p) {
    const reg idx = _mm512_set_epi64(1, 1, 1, 1, 0, 0, 0, 0);
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return _mm512_permutexvar_epi64(idx, _mm512_zextsi128_si512(v));
  }
  static inline mask odd_mask() { return 0xAA; }
  static inline mask hi2_mask() { return 0xCC; }

  // Lane i <-> lane i^(W/2): swap the two 256-bit register halves.
  static inline reg swaph(reg v) {
    return _mm512_shuffle_i64x2(v, v, 0x4E);
  }
  // [a0..a3, b0..b3]: the low halves of a and b, concatenated.
  static inline reg cat_lo(reg a, reg b) {
    return _mm512_shuffle_i64x2(a, b, 0x44);
  }
  // [a4..a7, b4..b7]: the high halves of a and b, concatenated.
  static inline reg cat_hi(reg a, reg b) {
    return _mm512_shuffle_i64x2(a, b, 0xEE);
  }
  // Lanes W/2..W-1 set: selects the high register half.
  static inline mask hih_mask() { return 0xF0; }

  static inline void interleave_store(u64* dst, reg lo, reg hi) {
    const reg idx_lo = _mm512_set_epi64(11, 3, 10, 2, 9, 1, 8, 0);
    const reg idx_hi = _mm512_set_epi64(15, 7, 14, 6, 13, 5, 12, 4);
    store(dst, _mm512_permutex2var_epi64(lo, idx_lo, hi));
    store(dst + 8, _mm512_permutex2var_epi64(lo, idx_hi, hi));
  }

  static inline void deinterleave_load(const u64* src, reg* even, reg* odd) {
    const reg v0 = load(src);
    const reg v1 = load(src + 8);
    const reg idx_e = _mm512_set_epi64(14, 12, 10, 8, 6, 4, 2, 0);
    const reg idx_o = _mm512_set_epi64(15, 13, 11, 9, 7, 5, 3, 1);
    *even = _mm512_permutex2var_epi64(v0, idx_e, v1);
    *odd = _mm512_permutex2var_epi64(v0, idx_o, v1);
  }
};
