// AVX2 backend: 4 u64 lanes. AVX2 has no unsigned 64-bit compare, min,
// or full mullo, so those are emulated: comparisons flip the sign bit
// and use the signed compare, mullo composes three 32x32 products, and
// mulhi takes the textbook four-product route with carry propagation
// through a 32-bit mid sum.
#include "simd/tables.h"

#ifdef CHAM_SIMD_AVX2

#include <immintrin.h>

#include "simd/kernels_scalar.h"

namespace cham {
namespace simd {

namespace {

struct Avx2 {
  using reg = __m256i;
  using mask = __m256i;  // lane-wide 0 / ~0
  using ScalarRef = ScalarRef64;
  static constexpr std::size_t W = 4;

  static inline reg load(const u64* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static inline void store(u64* p, reg v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static inline reg set1(u64 x) {
    return _mm256_set1_epi64x(static_cast<long long>(x));
  }
  static inline reg add(reg a, reg b) { return _mm256_add_epi64(a, b); }
  static inline reg sub(reg a, reg b) { return _mm256_sub_epi64(a, b); }

  static inline reg mullo(reg a, reg b) {
    const reg lo = _mm256_mul_epu32(a, b);
    const reg a_hi = _mm256_srli_epi64(a, 32);
    const reg b_hi = _mm256_srli_epi64(b, 32);
    const reg cross =
        _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
  }

  static inline reg mulhi(reg a, reg b) {
    const reg a_hi = _mm256_srli_epi64(a, 32);
    const reg b_hi = _mm256_srli_epi64(b, 32);
    const reg ll = _mm256_mul_epu32(a, b);
    const reg lh = _mm256_mul_epu32(a, b_hi);
    const reg hl = _mm256_mul_epu32(a_hi, b);
    const reg hh = _mm256_mul_epu32(a_hi, b_hi);
    const reg m32 = _mm256_set1_epi64x(0xFFFFFFFFll);
    const reg mid = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_srli_epi64(ll, 32), _mm256_and_si256(lh, m32)),
        _mm256_and_si256(hl, m32));
    return _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(hl, 32),
                         _mm256_srli_epi64(mid, 32)));
  }

  // 64-bit limbs: the loaded Shoup quotient is used as-is.
  static inline reg prep_quo(reg quo) { return quo; }

  // x·w mod q in [0, 2q): Harvey lazy product on the 64-bit quotient
  // estimate. Valid for any 64-bit x (q < 2^62).
  static inline reg shoup_lazy(reg x, reg op, reg quo, reg q) {
    return sub(mullo(x, op), mullo(mulhi(x, quo), q));
  }

  // Unsigned a > b via sign-bias: valid for the full 64-bit range.
  static inline mask gt(reg a, reg b) {
    const reg bias = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
    return _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias),
                              _mm256_xor_si256(b, bias));
  }
  static inline reg umin(reg a, reg b) {
    return _mm256_blendv_epi8(a, b, gt(a, b));
  }
  static inline mask eq0(reg v) {
    return _mm256_cmpeq_epi64(v, _mm256_setzero_si256());
  }
  static inline reg blend(mask m, reg t, reg f) {
    return _mm256_blendv_epi8(f, t, m);
  }
  static inline reg band(reg a, reg b) { return _mm256_and_si256(a, b); }
  static inline reg bor(reg a, reg b) { return _mm256_or_si256(a, b); }
  static inline reg bandn(reg m, reg v) { return _mm256_andnot_si256(m, v); }

  static inline reg gather(const u64* base, reg idx) {
    return _mm256_i64gather_epi64(reinterpret_cast<const long long*>(base),
                                  idx, 8);
  }
  static inline reg reverse(reg v) { return _mm256_permute4x64_epi64(v, 0x1B); }

  // Lane i <-> lane i^1: swap the u64 halves of each 128-bit lane.
  static inline reg swap1(reg v) { return _mm256_shuffle_epi32(v, 0x4E); }
  // Lane i <-> lane i^2: swap the two 128-bit halves.
  static inline reg swap2(reg v) {
    return _mm256_permute4x64_epi64(v, 0x4E);
  }
  // [p0,p0,p1,p1] from two contiguous values.
  static inline reg rep2_load(const u64* p) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return _mm256_permute4x64_epi64(_mm256_zextsi128_si256(v), 0x50);
  }
  // [p0,p0,p0,p0] from one value.
  static inline reg rep4_load(const u64* p) { return set1(p[0]); }
  static inline mask odd_mask() {
    return _mm256_set_epi64x(-1, 0, -1, 0);
  }
  static inline mask hi2_mask() {
    return _mm256_set_epi64x(-1, -1, 0, 0);
  }

  // Lane i <-> lane i^(W/2): with W = 4 this is the 128-bit half swap.
  static inline reg swaph(reg v) { return swap2(v); }
  // [a0,a1,b0,b1]: the low halves of a and b, concatenated.
  static inline reg cat_lo(reg a, reg b) {
    return _mm256_permute2x128_si256(a, b, 0x20);
  }
  // [a2,a3,b2,b3]: the high halves of a and b, concatenated.
  static inline reg cat_hi(reg a, reg b) {
    return _mm256_permute2x128_si256(a, b, 0x31);
  }
  // Lanes W/2..W-1 set: selects the high register half.
  static inline mask hih_mask() { return hi2_mask(); }

  static inline void interleave_store(u64* dst, reg lo, reg hi) {
    const reg ab = _mm256_unpacklo_epi64(lo, hi);  // l0 h0 l2 h2
    const reg cd = _mm256_unpackhi_epi64(lo, hi);  // l1 h1 l3 h3
    store(dst, _mm256_permute2x128_si256(ab, cd, 0x20));      // l0 h0 l1 h1
    store(dst + 4, _mm256_permute2x128_si256(ab, cd, 0x31));  // l2 h2 l3 h3
  }

  static inline void deinterleave_load(const u64* src, reg* even, reg* odd) {
    const reg v0 = load(src);      // e0 o0 e1 o1
    const reg v1 = load(src + 4);  // e2 o2 e3 o3
    const reg lo = _mm256_permute2x128_si256(v0, v1, 0x20);  // e0 o0 e2 o2
    const reg hi = _mm256_permute2x128_si256(v0, v1, 0x31);  // e1 o1 e3 o3
    *even = _mm256_unpacklo_epi64(lo, hi);
    *odd = _mm256_unpackhi_epi64(lo, hi);
  }
};

}  // namespace

}  // namespace simd
}  // namespace cham

#include "simd/kernels_vec.inl"

namespace cham {
namespace simd {

const Kernels* avx2_table() {
  using K = VecKernels<Avx2>;
  static const Kernels table = {
      K::add,
      K::sub,
      K::negate,
      K::mul_shoup,
      K::mul_shoup_acc,
      K::mul_scalar_shoup,
      K::mul_scalar_shoup_acc,
      K::ntt_fwd_bfly,
      K::ntt_fwd_dit4,
      K::ntt_inv_bfly,
      K::ntt_inv_last,
      K::ntt_fwd_tail,
      K::ntt_inv_tail,
      K::cg_fwd_stage,
      K::cg_inv_stage,
      K::permute,
      K::neg_rev,
      K::rescale_round,
      K::barrett_reduce,
  };
  return &table;
}

}  // namespace simd
}  // namespace cham

#else  // !CHAM_SIMD_AVX2

namespace cham {
namespace simd {

const Kernels* avx2_table() { return nullptr; }

}  // namespace simd
}  // namespace cham

#endif
