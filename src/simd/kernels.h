// Runtime-dispatched vectorized modular-arithmetic kernels.
//
// The software analogue of CHAM's data-parallel processing units: where
// the hardware runs 4 butterfly units per constant-geometry NTT core and
// one shift-add reducer per lane (paper Sec. IV, Table I), the CPU
// runtime runs 4 (AVX2) or 8 (AVX-512) 64-bit lanes per instruction.
// Four implementations of the same kernel set coexist — a portable
// scalar baseline, AVX2, AVX-512, and AVX-512-IFMA (52-bit-limb Shoup
// arithmetic on vpmadd52) — and one of them is selected once at startup
// via CPUID (overridable with CHAM_SIMD_LEVEL=scalar|avx2|avx512|
// avx512ifma). Dispatch is a plain function-pointer table, no vtables;
// every vector kernel is bit-exact with the scalar baseline for all
// inputs in its documented domain.
//
// Domain conventions (q is always an odd prime < 2^62):
//   * "reduced" operands are < q, outputs are < q;
//   * Shoup pairs are (w, floor(w·2^64/q)); mul-by-Shoup accepts ANY
//     64-bit x and returns exactly x·w mod q — except at the avx512ifma
//     level with q < kIfmaQBound, where the 52-bit product window
//     narrows the x domain to x < 2^52 (every in-tree call site passes
//     x < 4q < 2^52; for q >= kIfmaQBound the IFMA table runs the
//     double-word two-limb path, which recomposes the exact 64-bit
//     product and keeps the full-range contract);
//   * the Harvey-lazy NTT primitives keep values in [0, 4q) (forward) /
//     [0, 2q) (inverse) exactly like the scalar transform in nt/ntt.cc.
//     The 52-bit path produces lazy representatives that may differ from
//     the 64-bit ones by q (its quotient estimate floor(x·quo52/2^52)
//     can differ by 1), but always agrees modulo q and stays inside the
//     same lazy ranges; kernels_scalar52.h is the bit-exact reference
//     for those intermediates, and every fully-reduced output is
//     bit-exact across all tables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace cham {
namespace simd {

using u64 = std::uint64_t;

enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kAvx512Ifma = 3,
};

// The single-word 52-bit-limb path needs every lazy intermediate (< 4q)
// below the vpmadd52 product window (2^52), i.e. q < 2^50. The IFMA
// kernels check q against this bound at runtime and switch to the
// double-word path (two 52-bit limbs per operand, exact 64-bit Shoup
// arithmetic recomposed from paired vpmadd52 half products — see
// kernels_scalar104.h) above it, so the table stays correct for the full
// q < 2^62 domain. CHAM's working moduli (34/34/38 bits) sit far below
// the bound; the base-conversion/rescale special primes sit above it.
inline constexpr u64 kIfmaQBound = 1ULL << 50;

// Single predicate for "this modulus runs on the single-word 52-bit IFMA
// path" — use this instead of spelling q < kIfmaQBound at call sites.
// Kernel-internal; the IFMA table itself routes per call through
// ifma_use52() (which also stamps the simd.ifma.delegated counter), but
// planners/tests asking "which datapath would q take?" go through here.
inline bool ifma_eligible(u64 q) { return q < kIfmaQBound; }

struct Kernels {
  // --- element-wise mod-q ops (operands < q) ---
  void (*add)(const u64* a, const u64* b, u64* out, std::size_t n, u64 q);
  void (*sub)(const u64* a, const u64* b, u64* out, std::size_t n, u64 q);
  void (*negate)(const u64* a, u64* out, std::size_t n, u64 q);

  // --- Shoup pointwise products (per-coefficient operand/quotient) ---
  // out = x ∘ w, fully reduced; supports out aliasing x.
  void (*mul_shoup)(const u64* x, const u64* w_op, const u64* w_quo,
                    u64* out, std::size_t n, u64 q);
  // out += x ∘ w (mod q); out entries must be < q.
  void (*mul_shoup_acc)(const u64* x, const u64* w_op, const u64* w_quo,
                        u64* out, std::size_t n, u64 q);

  // --- Shoup product by one fixed scalar (op, quo) ---
  void (*mul_scalar_shoup)(const u64* x, u64 op, u64 quo, u64* out,
                           std::size_t n, u64 q);
  void (*mul_scalar_shoup_acc)(const u64* x, u64 op, u64 quo, u64* out,
                               std::size_t n, u64 q);

  // --- Harvey-lazy NTT butterfly sweeps (contiguous spans) ---
  // Forward CT radix-2: inputs in [0, 4q);
  //   u = x[j] corrected once by -2q, v = lazy(y[j]·w) in [0, 2q),
  //   x[j] = u + v, y[j] = u + 2q - v  (both < 4q).
  void (*ntt_fwd_bfly)(u64* x, u64* y, std::size_t count, u64 w_op,
                       u64 w_quo, u64 q);
  // Forward fused radix-4 double stage: applies stage (m, t) with twiddle
  // wa and stage (2m, t/2) with twiddles wb0/wb1 while the four
  // coefficients are in registers (the inner loop of nt/ntt.cc's fused
  // passes). Inputs in [0, 4q), outputs in [0, 4q).
  void (*ntt_fwd_dit4)(u64* x0, u64* x1, u64* x2, u64* x3,
                       std::size_t count, u64 wa_op, u64 wa_quo, u64 wb0_op,
                       u64 wb0_quo, u64 wb1_op, u64 wb1_quo, u64 q);
  // Inverse GS radix-2: inputs in [0, 2q);
  //   x[j] = (u + v) corrected once by -2q, y[j] = lazy((u + 2q - v)·w).
  void (*ntt_inv_bfly)(u64* x, u64* y, std::size_t count, u64 w_op,
                       u64 w_quo, u64 q);
  // Inverse last stage fused with the n^{-1} scaling: x[j] = (u+v)·ninv,
  // y[j] = (u + 2q - v)·nw, both fully reduced (< q).
  void (*ntt_inv_last)(u64* x, u64* y, std::size_t count, u64 ninv_op,
                       u64 ninv_quo, u64 nw_op, u64 nw_quo, u64 q);
  // Fused final forward double pass: stage (n/4, t=2) then stage
  // (n/2, t=1), followed by the full correction to [0, q). Block b of
  // four coefficients a[4b..4b+4) uses twiddle wa[b] for the stride-2
  // stage and wb[2b], wb[2b+1] for the stride-1 stage; wa/wb are SoA
  // planes of the bit-reversed root powers offset by n/4 and n/2.
  // Strides here are below the vector width, so the vector backends use
  // in-register lane shuffles instead of scalar fallback. n must be a
  // multiple of 4; inputs in [0, 4q), outputs fully reduced.
  void (*ntt_fwd_tail)(u64* a, std::size_t n, const u64* wa_op,
                       const u64* wa_quo, const u64* wb_op,
                       const u64* wb_quo, u64 q);
  // Fused first two inverse passes: stage t=1 (pair j uses w1[j]) then
  // stage t=2 (quad b uses w2[b]); w1/w2 are the inverse twiddle planes
  // offset by n/2 and n/4. n must be a multiple of 4; inputs and outputs
  // in [0, 2q).
  void (*ntt_inv_tail)(u64* a, std::size_t n, const u64* w1_op,
                       const u64* w1_quo, const u64* w2_op,
                       const u64* w2_quo, u64 q);

  // --- constant-geometry NTT stages (full reduction, nt/cg_ntt.cc) ---
  // One forward stage: for j in [0, half), with w = table[j & mask]:
  //   y = src[j+half]·w mod q, dst[2j] = src[j]+y, dst[2j+1] = src[j]-y.
  // mask+1 is a power of two (the stage's twiddle period).
  void (*cg_fwd_stage)(const u64* src, u64* dst, std::size_t half,
                       const u64* w_op, const u64* w_quo, std::size_t mask,
                       u64 q);
  // One inverse stage: u = src[2j], v = src[2j+1];
  //   dst[j] = u+v mod q, dst[j+half] = (u-v)·table[j & mask] mod q.
  void (*cg_inv_stage)(const u64* src, u64* dst, std::size_t half,
                       const u64* w_op, const u64* w_quo, std::size_t mask,
                       u64 q);

  // --- structural ops ---
  // Gathered signed permutation (Automorph): out[i] = a[src_idx[i]],
  // negated mod q where flip[i] == ~0 (flip entries are 0 or all-ones).
  void (*permute)(const u64* a, const u64* src_idx, const u64* flip,
                  u64* out, std::size_t n, u64 q);
  // Negacyclic reverse (ExtractLWE at index 0 and its LWE->RLWE
  // involution): out[0] = a[0], out[j] = -a[n-j] mod q for j in [1, n).
  // a and out must not alias.
  void (*neg_rev)(const u64* a, u64* out, std::size_t n, u64 q);

  // --- fused divide-and-round by the special modulus (Rescale) ---
  // For each i, with r = xp[i] (< pv) the residue mod the dropped prime:
  //   t    = (r > pv/2) ? pv - r : r, reduced mod q
  //   diff = (r > pv/2) ? xl[i] + t : xl[i] - t   (mod q)
  //   out[i] = diff · p_inv mod q                  (Shoup pair pinv)
  // q_barrett = floor(2^64 / q) drives the in-register reduction of t.
  void (*rescale_round)(const u64* xl, const u64* xp, u64* out,
                        std::size_t n, u64 pv, u64 q, u64 q_barrett,
                        u64 pinv_op, u64 pinv_quo);

  // --- Barrett reduction of arbitrary 64-bit values (digit lifting) ---
  // out[i] = x[i] mod q for ANY 64-bit x[i]; q_barrett = floor(2^64/q).
  // The approximate quotient floor(mulhi(x, q_barrett)) undershoots
  // floor(x/q) by at most 1, so the remainder lands in [0, 2q) and two
  // conditional subtractions fully reduce it. Always runs on the 64-bit
  // mulhi regardless of limb width, so the output is bit-exact across
  // every table. This is the hybrid key-switch decomposition primitive:
  // lifting a base-q residue limb onto every modulus of base_qp.
  void (*barrett_reduce)(const u64* x, u64* out, std::size_t n, u64 q,
                         u64 q_barrett);
};

// The table selected at startup (CPUID best, CHAM_SIMD_LEVEL override).
const Kernels& active();
Level active_level();

// Stable lowercase name ("scalar", "avx2", "avx512", "avx512ifma") —
// recorded in the CHAM-BENCH lines so baselines are never compared
// across levels.
const char* level_name(Level level);
inline const char* level_name() { return level_name(active_level()); }

// Table for one specific level, or nullptr when that backend was not
// compiled in (CHAM_SIMD=OFF / unsupported compiler) or the CPU lacks
// the ISA. Scalar is always available. Benches and the fuzz tests use
// this to pit every compiled backend against the scalar baseline inside
// one process, regardless of the dispatched level.
const Kernels* table_for(Level level);

// True when the running CPU can execute `level` (compile support aside).
bool cpu_supports(Level level);

// Parse a CHAM_SIMD_LEVEL value; returns false on unknown names.
bool parse_level(const char* s, Level* out);

// Resolve an explicit CHAM_SIMD_LEVEL request (`env`, may be null)
// against what this build and CPU can run: returns the level to
// dispatch. An unknown name or a level this CPU/build cannot execute
// falls back to auto-detection; when that happens and `warning` is
// non-null, it receives a one-line explanation (cleared when the request
// was honoured or absent). Pure — reads no process state besides CPUID —
// so tests can exercise the fallback paths without re-execing; dispatch
// applies it once at startup and prints the warning to stderr.
Level resolve_level(const char* env, std::string* warning);

// True when `level` is the IFMA level and NONE of the `count` context
// moduli fits the single-word 52-bit datapath — i.e. the whole context
// will run on the double-word limb path under the `avx512ifma` label.
// Pure companion to resolve_level (which has no modulus knowledge), so
// tests can probe the predicate without touching process state.
bool ifma_context_all_wide(Level level, const u64* moduli,
                           std::size_t count);

// Context-creation hook: when ifma_context_all_wide holds for the
// dispatched level, print a one-line note to stderr (once per process)
// and bump the simd.ifma.wide_context counter, so an all-wide modulus
// chain never runs silently under the avx512ifma label. Returns whether
// this call fired the note.
bool note_ifma_wide_context(const u64* moduli, std::size_t count);

}  // namespace simd
}  // namespace cham
