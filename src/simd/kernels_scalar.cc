#include "simd/kernels_scalar.h"

#include "simd/tables.h"

namespace cham {
namespace simd {
namespace scalar {

namespace {

using u128 = unsigned __int128;

// x·w mod q, fully reduced, valid for any 64-bit x (q < 2^63).
inline u64 shoup_mul(u64 x, u64 op, u64 quo, u64 q) {
  const u64 hi = static_cast<u64>((static_cast<u128>(x) * quo) >> 64);
  const u64 r = x * op - hi * q;
  return r >= q ? r - q : r;
}

// Lazy variant: result in [0, 2q).
inline u64 shoup_mul_lazy(u64 x, u64 op, u64 quo, u64 q) {
  const u64 hi = static_cast<u64>((static_cast<u128>(x) * quo) >> 64);
  return x * op - hi * q;
}

}  // namespace

void add(const u64* a, const u64* b, u64* out, std::size_t n, u64 q) {
  for (std::size_t i = 0; i < n; ++i) {
    const u64 s = a[i] + b[i];
    out[i] = s >= q ? s - q : s;
  }
}

void sub(const u64* a, const u64* b, u64* out, std::size_t n, u64 q) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = a[i] >= b[i] ? a[i] - b[i] : a[i] + q - b[i];
  }
}

void negate(const u64* a, u64* out, std::size_t n, u64 q) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = a[i] == 0 ? 0 : q - a[i];
  }
}

void mul_shoup(const u64* x, const u64* w_op, const u64* w_quo, u64* out,
               std::size_t n, u64 q) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = shoup_mul(x[i], w_op[i], w_quo[i], q);
  }
}

void mul_shoup_acc(const u64* x, const u64* w_op, const u64* w_quo,
                   u64* out, std::size_t n, u64 q) {
  for (std::size_t i = 0; i < n; ++i) {
    const u64 r = shoup_mul(x[i], w_op[i], w_quo[i], q);
    const u64 s = out[i] + r;
    out[i] = s >= q ? s - q : s;
  }
}

void mul_scalar_shoup(const u64* x, u64 op, u64 quo, u64* out,
                      std::size_t n, u64 q) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = shoup_mul(x[i], op, quo, q);
  }
}

void mul_scalar_shoup_acc(const u64* x, u64 op, u64 quo, u64* out,
                          std::size_t n, u64 q) {
  for (std::size_t i = 0; i < n; ++i) {
    const u64 r = shoup_mul(x[i], op, quo, q);
    const u64 s = out[i] + r;
    out[i] = s >= q ? s - q : s;
  }
}

void ntt_fwd_bfly(u64* x, u64* y, std::size_t count, u64 w_op, u64 w_quo,
                  u64 q) {
  const u64 two_q = q << 1;
  for (std::size_t j = 0; j < count; ++j) {
    u64 u = x[j];
    u = u >= two_q ? u - two_q : u;
    const u64 v = shoup_mul_lazy(y[j], w_op, w_quo, q);
    x[j] = u + v;
    y[j] = u + two_q - v;
  }
}

void ntt_fwd_dit4(u64* x0, u64* x1, u64* x2, u64* x3, std::size_t count,
                  u64 wa_op, u64 wa_quo, u64 wb0_op, u64 wb0_quo,
                  u64 wb1_op, u64 wb1_quo, u64 q) {
  const u64 two_q = q << 1;
  for (std::size_t j = 0; j < count; ++j) {
    u64 a0 = x0[j];
    u64 a1 = x1[j];
    a0 = a0 >= two_q ? a0 - two_q : a0;
    a1 = a1 >= two_q ? a1 - two_q : a1;
    const u64 m2 = shoup_mul_lazy(x2[j], wa_op, wa_quo, q);
    const u64 m3 = shoup_mul_lazy(x3[j], wa_op, wa_quo, q);
    u64 b0 = a0 + m2;
    const u64 b1 = a1 + m3;
    u64 b2 = a0 + two_q - m2;
    const u64 b3 = a1 + two_q - m3;
    b0 = b0 >= two_q ? b0 - two_q : b0;
    b2 = b2 >= two_q ? b2 - two_q : b2;
    const u64 c1 = shoup_mul_lazy(b1, wb0_op, wb0_quo, q);
    const u64 c3 = shoup_mul_lazy(b3, wb1_op, wb1_quo, q);
    x0[j] = b0 + c1;
    x1[j] = b0 + two_q - c1;
    x2[j] = b2 + c3;
    x3[j] = b2 + two_q - c3;
  }
}

void ntt_inv_bfly(u64* x, u64* y, std::size_t count, u64 w_op, u64 w_quo,
                  u64 q) {
  const u64 two_q = q << 1;
  for (std::size_t j = 0; j < count; ++j) {
    const u64 u = x[j];
    const u64 v = y[j];
    u64 s = u + v;
    s = s >= two_q ? s - two_q : s;
    x[j] = s;
    y[j] = shoup_mul_lazy(u + two_q - v, w_op, w_quo, q);
  }
}

void ntt_inv_last(u64* x, u64* y, std::size_t count, u64 ninv_op,
                  u64 ninv_quo, u64 nw_op, u64 nw_quo, u64 q) {
  const u64 two_q = q << 1;
  for (std::size_t j = 0; j < count; ++j) {
    const u64 u = x[j];
    const u64 v = y[j];
    x[j] = shoup_mul(u + v, ninv_op, ninv_quo, q);
    y[j] = shoup_mul(u + two_q - v, nw_op, nw_quo, q);
  }
}

void cg_fwd_stage(const u64* src, u64* dst, std::size_t half,
                  const u64* w_op, const u64* w_quo, std::size_t mask,
                  u64 q) {
  for (std::size_t j = 0; j < half; ++j) {
    const std::size_t w = j & mask;
    const u64 x = src[j];
    const u64 y = shoup_mul(src[j + half], w_op[w], w_quo[w], q);
    const u64 sum = x + y;
    dst[2 * j] = sum >= q ? sum - q : sum;
    dst[2 * j + 1] = x >= y ? x - y : x + q - y;
  }
}

void cg_inv_stage(const u64* src, u64* dst, std::size_t half,
                  const u64* w_op, const u64* w_quo, std::size_t mask,
                  u64 q) {
  for (std::size_t j = 0; j < half; ++j) {
    const std::size_t w = j & mask;
    const u64 u = src[2 * j];
    const u64 v = src[2 * j + 1];
    const u64 sum = u + v;
    dst[j] = sum >= q ? sum - q : sum;
    dst[j + half] = shoup_mul(u + q - v, w_op[w], w_quo[w], q);
  }
}

void permute(const u64* a, const u64* src_idx, const u64* flip, u64* out,
             std::size_t n, u64 q) {
  for (std::size_t i = 0; i < n; ++i) {
    const u64 v = a[src_idx[i]];
    out[i] = flip[i] ? (v == 0 ? 0 : q - v) : v;
  }
}

void neg_rev(const u64* a, u64* out, std::size_t n, u64 q) {
  out[0] = a[0];
  for (std::size_t j = 1; j < n; ++j) {
    const u64 v = a[n - j];
    out[j] = v == 0 ? 0 : q - v;
  }
}

void rescale_round(const u64* xl, const u64* xp, u64* out, std::size_t n,
                   u64 pv, u64 q, u64 q_barrett, u64 pinv_op, u64 pinv_quo) {
  const u64 half = pv >> 1;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 r = xp[i];
    const bool up = r > half;
    u64 t = up ? pv - r : r;
    // t mod q via the precomputed floor(2^64/q): the approximate quotient
    // undershoots by < 2, so two conditional subtractions fully reduce.
    const u64 qhat = static_cast<u64>((static_cast<u128>(t) * q_barrett) >> 64);
    t -= qhat * q;
    if (t >= q) t -= q;
    if (t >= q) t -= q;
    u64 diff;
    if (up) {
      const u64 s = xl[i] + t;
      diff = s >= q ? s - q : s;
    } else {
      diff = xl[i] >= t ? xl[i] - t : xl[i] + q - t;
    }
    out[i] = shoup_mul(diff, pinv_op, pinv_quo, q);
  }
}

}  // namespace scalar

const Kernels* scalar_table() {
  static const Kernels table = {
      scalar::add,
      scalar::sub,
      scalar::negate,
      scalar::mul_shoup,
      scalar::mul_shoup_acc,
      scalar::mul_scalar_shoup,
      scalar::mul_scalar_shoup_acc,
      scalar::ntt_fwd_bfly,
      scalar::ntt_fwd_dit4,
      scalar::ntt_inv_bfly,
      scalar::ntt_inv_last,
      scalar::cg_fwd_stage,
      scalar::cg_inv_stage,
      scalar::permute,
      scalar::neg_rev,
      scalar::rescale_round,
  };
  return &table;
}

}  // namespace simd
}  // namespace cham
