// Internal: the double-word (two 52-bit limb) scalar reference for the
// AVX-512-IFMA wide-modulus path.
//
// For q >= kIfmaQBound the single-word 52-bit path is unusable (lazy
// values < 4q no longer fit the vpmadd52 product window), so the IFMA
// backend represents every 64-bit operand in-register as two 52-bit
// limbs, x = x0 + x1*2^52 with x1 < 2^12, and recomposes the EXACT
// 64-bit Shoup arithmetic out of paired vpmadd52luq/vpmadd52huq half
// products. The pivotal identity, with a = a0 + a1*2^52 and
// b = b0 + b1*2^52:
//
//   a*b = lo52(a0*b0)
//       + [hi52(a0*b0) + lo52(a1*b0) + lo52(a0*b1)] * 2^52      (= t)
//       + [a1*b1 + hi52(a1*b0) + hi52(a0*b1)]       * 2^104     (= c)
//
// and because t < 2^54 while lo52(a0*b0) + (t mod 2^12)*2^52 < 2^64
// carries nowhere, the high word is exactly
//
//   mulhi64(a, b) = (c << 40) + (t >> 12).
//
// (a1*b1 < 2^24 so its low-52 product is already exact; the whole c
// column fits 25 bits.) Every madd52 operand is hardware-masked to its
// low 52 bits, so no explicit limb masking is needed — only the two
// >> 52 shifts that expose a1/b1. Six madd52 + four shifts/adds replace
// the sixteen-op 32x32 recomposition of the 64-bit AVX-512 mulhi.
//
// Because the quotient estimate floor(x*quo64 / 2^64) is recomposed
// EXACTLY, the double-word kernels are bit-identical to the 64-bit
// scalar reference (kernels_scalar.h) in every lazy intermediate —
// unlike the single-word 52-bit path, whose truncated quotient may
// differ by one. This table therefore pins the limb/carry discipline
// (the fuzz suite runs the vector kernels against it) while also
// certifying no-representative-divergence against the canonical scalar
// table.
//
// Domain: any q < 2^62 (the full dispatch-table contract) and any
// 64-bit x.
#pragma once

#include "simd/kernels.h"
#include "simd/kernels_scalar.h"
#include "simd/kernels_scalar52.h"

namespace cham {
namespace simd {
namespace scalar104 {

// Exact high 64 bits of a*b, recomposed from 52-bit half products — the
// scalar mirror of the vector path's madd52 chain (same association,
// same carry points).
inline u64 mulhi64(u64 a, u64 b) {
  const u64 a1 = a >> 52;
  const u64 b1 = b >> 52;
  u64 t = scalar52::madd52hi(0, a, b);
  t = scalar52::madd52lo(t, a1, b);
  t = scalar52::madd52lo(t, a, b1);
  u64 c = scalar52::madd52lo(0, a1, b1);
  c = scalar52::madd52hi(c, a1, b);
  c = scalar52::madd52hi(c, a, b1);
  return (c << 40) + (t >> 12);
}

// x*w mod q in [0, 2q): the standard 64-bit Harvey lazy product with the
// quotient estimate on the limb-recomposed mulhi64. Bit-identical to
// scalar::shoup_mul_lazy for all inputs.
inline u64 shoup_mul_lazy(u64 x, u64 op, u64 quo, u64 q) {
  return x * op - mulhi64(x, quo) * q;
}

inline u64 shoup_mul(u64 x, u64 op, u64 quo, u64 q) {
  const u64 r = shoup_mul_lazy(x, op, quo, q);
  return r >= q ? r - q : r;
}

void mul_shoup(const u64* x, const u64* w_op, const u64* w_quo, u64* out,
               std::size_t n, u64 q);
void mul_shoup_acc(const u64* x, const u64* w_op, const u64* w_quo,
                   u64* out, std::size_t n, u64 q);
void mul_scalar_shoup(const u64* x, u64 op, u64 quo, u64* out,
                      std::size_t n, u64 q);
void mul_scalar_shoup_acc(const u64* x, u64 op, u64 quo, u64* out,
                          std::size_t n, u64 q);
void ntt_fwd_bfly(u64* x, u64* y, std::size_t count, u64 w_op, u64 w_quo,
                  u64 q);
void ntt_fwd_dit4(u64* x0, u64* x1, u64* x2, u64* x3, std::size_t count,
                  u64 wa_op, u64 wa_quo, u64 wb0_op, u64 wb0_quo,
                  u64 wb1_op, u64 wb1_quo, u64 q);
void ntt_inv_bfly(u64* x, u64* y, std::size_t count, u64 w_op, u64 w_quo,
                  u64 q);
void ntt_inv_last(u64* x, u64* y, std::size_t count, u64 ninv_op,
                  u64 ninv_quo, u64 nw_op, u64 nw_quo, u64 q);
void ntt_fwd_tail(u64* a, std::size_t n, const u64* wa_op,
                  const u64* wa_quo, const u64* wb_op, const u64* wb_quo,
                  u64 q);
void ntt_inv_tail(u64* a, std::size_t n, const u64* w1_op,
                  const u64* w1_quo, const u64* w2_op, const u64* w2_quo,
                  u64 q);
void cg_fwd_stage(const u64* src, u64* dst, std::size_t half,
                  const u64* w_op, const u64* w_quo, std::size_t mask,
                  u64 q);
void cg_inv_stage(const u64* src, u64* dst, std::size_t half,
                  const u64* w_op, const u64* w_quo, std::size_t mask,
                  u64 q);
void rescale_round(const u64* xl, const u64* xp, u64* out, std::size_t n,
                   u64 pv, u64 q, u64 q_barrett, u64 pinv_op, u64 pinv_quo);
void barrett_reduce(const u64* x, u64* out, std::size_t n, u64 q,
                    u64 q_barrett);

}  // namespace scalar104

// Reference bundle for the double-word IFMA traits (see ScalarRef64 in
// kernels_scalar.h): multiply-free kernels keep the canonical scalar
// implementations — their semantics don't depend on the limb width.
struct ScalarRef104 {
  static inline u64 shoup_mul(u64 x, u64 op, u64 quo, u64 q) {
    return scalar104::shoup_mul(x, op, quo, q);
  }
  static constexpr auto mul_shoup = scalar104::mul_shoup;
  static constexpr auto mul_shoup_acc = scalar104::mul_shoup_acc;
  static constexpr auto mul_scalar_shoup = scalar104::mul_scalar_shoup;
  static constexpr auto mul_scalar_shoup_acc =
      scalar104::mul_scalar_shoup_acc;
  static constexpr auto ntt_fwd_bfly = scalar104::ntt_fwd_bfly;
  static constexpr auto ntt_fwd_dit4 = scalar104::ntt_fwd_dit4;
  static constexpr auto ntt_inv_bfly = scalar104::ntt_inv_bfly;
  static constexpr auto ntt_inv_last = scalar104::ntt_inv_last;
  static constexpr auto ntt_fwd_tail = scalar104::ntt_fwd_tail;
  static constexpr auto ntt_inv_tail = scalar104::ntt_inv_tail;
  static constexpr auto rescale_round = scalar104::rescale_round;
};

// Full kernel table over the double-word reference (multiply-free
// entries are the canonical scalar ones). Not a dispatch level — the
// fuzz suite uses it as the bit-exact oracle for the wide-modulus IFMA
// vector kernels, and as a standalone subject for the
// limbs-reproduce-the-64-bit-quotient identity tests.
const Kernels* scalar104_table();

}  // namespace simd
}  // namespace cham
