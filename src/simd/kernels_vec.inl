// Width-generic vector kernel bodies, shared by the AVX2, AVX-512 and
// AVX-512-IFMA translation units. Each backend defines a traits type V
// (register, lane count W, and the primitive ops below) and instantiates
// VecKernels<V>; everything algorithmic lives here exactly once so the
// ISAs cannot drift apart.
//
// Required traits (all on vectors of W u64 lanes):
//   reg  load(const u64*), void store(u64*, reg)   — unaligned ok
//   reg  set1(u64)
//   reg  add(reg, reg), sub(reg, reg)              — wraparound mod 2^64
//   reg  mullo(reg, reg)                           — low 64 bits of product
//   reg  mulhi(reg, reg)                           — high 64 bits of product
//   reg  umin(reg, reg)                            — unsigned 64-bit min
//   mask gt(reg a, reg b)                          — unsigned a > b
//   mask eq0(reg)
//   reg  blend(mask, reg t, reg f)                 — m ? t : f
//   reg  band(reg, reg), bor(reg, reg), bandn(reg m, reg v)  — bitwise,
//        bandn = (~m) & v
//   reg  gather(const u64* base, reg idx)
//   reg  reverse(reg)                              — lane order reversal
//   void interleave_store(u64* dst, reg lo, reg hi)
//        — dst[0..2W) = lo0, hi0, lo1, hi1, ...
//   void deinterleave_load(const u64* src, reg* even, reg* odd)
//
// Modular-multiply traits (the limb-width seam — the IFMA backend
// overrides these three and inherits everything else):
//   ScalarRef                — reference bundle whose limb semantics
//        match the vector arithmetic (ScalarRef64 / ScalarRef52); all
//        multiply-carrying loop tails run on it so tails stay bit-exact
//        with the vector body
//   reg  prep_quo(reg quo64) — per-register prep of the loaded 64-bit
//        Shoup quotients (identity for 64-bit limbs, >> 12 for the
//        52-bit path); applied once per load/broadcast
//   reg  shoup_lazy(reg x, reg op, reg quo, reg q)
//        — x·w mod q in [0, 2q) (Harvey lazy), quo already prepped
//
// Lane-shuffle traits (NTT tail stages, strides below the vector width):
//   reg  swap1(reg), swap2(reg)   — exchange lane i with lane i^1 / i^2
//   reg  rep2_load(const u64* p)  — [p0,p0,p1,p1,...]   (W/2 values x2)
//   reg  rep4_load(const u64* p)  — [p0,p0,p0,p0,p1,...] (W/4 values x4)
//   mask odd_mask(), hi2_mask()   — lanes with (i & 1) / (i & 2) set
//
// Loop tails (count % W) always fall through to the traits' ScalarRef,
// so every kernel accepts arbitrary lengths.
//
// This file is internal to src/simd; it is an .inl on purpose (it is not
// a standalone header and must only be included after kernels_scalar.h).
// The traits types live in each TU's anonymous namespace, which gives
// the VecKernels instantiations internal linkage — important because the
// TUs are compiled with different -m flags, and a vague-linkage merge
// across them could hand a non-IFMA CPU code compiled with -mavx512ifma.

namespace cham {
namespace simd {

template <typename V>
struct VecKernels {
  using reg = typename V::reg;
  using S = typename V::ScalarRef;
  static constexpr std::size_t W = V::W;

  // a (mod-2^64) conditionally reduced by m: a >= m ? a - m : a.
  // umin picks the subtracted value exactly when it did not wrap.
  static inline reg csub(reg a, reg m) { return V::umin(a, V::sub(a, m)); }

  // x·w mod q in [0, 2q) (Harvey lazy Shoup product); quo prepped.
  static inline reg shoup_lazy(reg x, reg op, reg quo, reg q) {
    return V::shoup_lazy(x, op, quo, q);
  }

  // x·w mod q fully reduced.
  static inline reg shoup_full(reg x, reg op, reg quo, reg q) {
    return csub(shoup_lazy(x, op, quo, q), q);
  }

  // a - b mod q for reduced operands: a + q - b, folded once.
  static inline reg submod(reg a, reg b, reg q) {
    return csub(V::add(a, V::sub(q, b)), q);
  }

  static void add(const u64* a, const u64* b, u64* out, std::size_t n,
                  u64 q) {
    const reg vq = V::set1(q);
    std::size_t i = 0;
    for (; i + W <= n; i += W) {
      V::store(out + i, csub(V::add(V::load(a + i), V::load(b + i)), vq));
    }
    scalar::add(a + i, b + i, out + i, n - i, q);
  }

  static void sub(const u64* a, const u64* b, u64* out, std::size_t n,
                  u64 q) {
    const reg vq = V::set1(q);
    std::size_t i = 0;
    for (; i + W <= n; i += W) {
      V::store(out + i, submod(V::load(a + i), V::load(b + i), vq));
    }
    scalar::sub(a + i, b + i, out + i, n - i, q);
  }

  static void negate(const u64* a, u64* out, std::size_t n, u64 q) {
    const reg vq = V::set1(q);
    std::size_t i = 0;
    for (; i + W <= n; i += W) {
      const reg v = V::load(a + i);
      V::store(out + i, V::blend(V::eq0(v), V::set1(0), V::sub(vq, v)));
    }
    scalar::negate(a + i, out + i, n - i, q);
  }

  static void mul_shoup(const u64* x, const u64* w_op, const u64* w_quo,
                        u64* out, std::size_t n, u64 q) {
    const reg vq = V::set1(q);
    std::size_t i = 0;
    // 2x unroll: two independent Shoup chains in flight hide the long
    // mulhi/mullo latency on cores with a single wide-multiply port.
    for (; i + 2 * W <= n; i += 2 * W) {
      const reg r0 = shoup_full(V::load(x + i), V::load(w_op + i),
                                V::prep_quo(V::load(w_quo + i)), vq);
      const reg r1 = shoup_full(V::load(x + i + W), V::load(w_op + i + W),
                                V::prep_quo(V::load(w_quo + i + W)), vq);
      V::store(out + i, r0);
      V::store(out + i + W, r1);
    }
    for (; i + W <= n; i += W) {
      V::store(out + i, shoup_full(V::load(x + i), V::load(w_op + i),
                                   V::prep_quo(V::load(w_quo + i)), vq));
    }
    S::mul_shoup(x + i, w_op + i, w_quo + i, out + i, n - i, q);
  }

  static void mul_shoup_acc(const u64* x, const u64* w_op,
                            const u64* w_quo, u64* out, std::size_t n,
                            u64 q) {
    const reg vq = V::set1(q);
    std::size_t i = 0;
    for (; i + W <= n; i += W) {
      const reg r = shoup_full(V::load(x + i), V::load(w_op + i),
                               V::prep_quo(V::load(w_quo + i)), vq);
      V::store(out + i, csub(V::add(V::load(out + i), r), vq));
    }
    S::mul_shoup_acc(x + i, w_op + i, w_quo + i, out + i, n - i, q);
  }

  static void mul_scalar_shoup(const u64* x, u64 op, u64 quo, u64* out,
                               std::size_t n, u64 q) {
    const reg vq = V::set1(q);
    const reg vop = V::set1(op);
    const reg vquo = V::prep_quo(V::set1(quo));
    std::size_t i = 0;
    for (; i + W <= n; i += W) {
      V::store(out + i, shoup_full(V::load(x + i), vop, vquo, vq));
    }
    S::mul_scalar_shoup(x + i, op, quo, out + i, n - i, q);
  }

  static void mul_scalar_shoup_acc(const u64* x, u64 op, u64 quo, u64* out,
                                   std::size_t n, u64 q) {
    const reg vq = V::set1(q);
    const reg vop = V::set1(op);
    const reg vquo = V::prep_quo(V::set1(quo));
    std::size_t i = 0;
    for (; i + W <= n; i += W) {
      const reg r = shoup_full(V::load(x + i), vop, vquo, vq);
      V::store(out + i, csub(V::add(V::load(out + i), r), vq));
    }
    S::mul_scalar_shoup_acc(x + i, op, quo, out + i, n - i, q);
  }

  static void ntt_fwd_bfly(u64* x, u64* y, std::size_t count, u64 w_op,
                           u64 w_quo, u64 q) {
    const reg vq = V::set1(q);
    const reg v2q = V::set1(q << 1);
    const reg vop = V::set1(w_op);
    const reg vquo = V::prep_quo(V::set1(w_quo));
    std::size_t j = 0;
    // 2x unroll: two independent butterfly chains hide the Shoup
    // multiply latency (see mul_shoup).
    for (; j + 2 * W <= count; j += 2 * W) {
      const reg u0 = csub(V::load(x + j), v2q);
      const reg u1 = csub(V::load(x + j + W), v2q);
      const reg v0 = shoup_lazy(V::load(y + j), vop, vquo, vq);
      const reg v1 = shoup_lazy(V::load(y + j + W), vop, vquo, vq);
      V::store(x + j, V::add(u0, v0));
      V::store(y + j, V::add(u0, V::sub(v2q, v0)));
      V::store(x + j + W, V::add(u1, v1));
      V::store(y + j + W, V::add(u1, V::sub(v2q, v1)));
    }
    for (; j + W <= count; j += W) {
      const reg u = csub(V::load(x + j), v2q);
      const reg v = shoup_lazy(V::load(y + j), vop, vquo, vq);
      V::store(x + j, V::add(u, v));
      V::store(y + j, V::add(u, V::sub(v2q, v)));
    }
    S::ntt_fwd_bfly(x + j, y + j, count - j, w_op, w_quo, q);
  }

  static void ntt_fwd_dit4(u64* x0, u64* x1, u64* x2, u64* x3,
                           std::size_t count, u64 wa_op, u64 wa_quo,
                           u64 wb0_op, u64 wb0_quo, u64 wb1_op, u64 wb1_quo,
                           u64 q) {
    // One radix-4 block filling exactly two registers (count == W/2 with
    // the four quarter-blocks contiguous, as NttTables lays them out in
    // its last fused pass): both butterfly ranks run in-register. The
    // arithmetic mirrors the main loop below operation-for-operation —
    // only the half-concatenations move lanes — so results stay
    // bit-exact with the scalar body. Without this, the whole pass
    // (every coefficient once) would fall through to scalar tails on
    // 512-bit levels.
    if (count == W / 2 && x1 == x0 + count && x2 == x0 + 2 * count &&
        x3 == x0 + 3 * count) {
      const reg vq = V::set1(q);
      const reg v2q = V::set1(q << 1);
      const reg va_op = V::set1(wa_op);
      const reg va_quo = V::prep_quo(V::set1(wa_quo));
      const reg vb_op = V::cat_lo(V::set1(wb0_op), V::set1(wb1_op));
      const reg vb_quo =
          V::prep_quo(V::cat_lo(V::set1(wb0_quo), V::set1(wb1_quo)));
      const auto hih = V::hih_mask();
      const reg u = csub(V::load(x0), v2q);                       // [a0|a1]
      const reg mm = shoup_lazy(V::load(x2), va_op, va_quo, vq);  // [m2|m3]
      const reg s_raw = V::add(u, mm);
      const reg d_raw = V::add(u, V::sub(v2q, mm));
      // b0/b2 get the extra csub, b1/b3 stay lazy (high half).
      const reg s = V::blend(hih, s_raw, csub(s_raw, v2q));  // [b0|b1]
      const reg d = V::blend(hih, d_raw, csub(d_raw, v2q));  // [b2|b3]
      const reg c =
          shoup_lazy(V::cat_hi(s, d), vb_op, vb_quo, vq);    // [c1|c3]
      const reg f = V::cat_lo(s, d);                         // [b0|b2]
      const reg sum = V::add(f, c);
      const reg diff = V::add(f, V::sub(v2q, c));
      V::store(x0, V::cat_lo(sum, diff));
      V::store(x2, V::cat_hi(sum, diff));
      return;
    }
    const reg vq = V::set1(q);
    const reg v2q = V::set1(q << 1);
    const reg va_op = V::set1(wa_op);
    const reg va_quo = V::prep_quo(V::set1(wa_quo));
    const reg vb0_op = V::set1(wb0_op);
    const reg vb0_quo = V::prep_quo(V::set1(wb0_quo));
    const reg vb1_op = V::set1(wb1_op);
    const reg vb1_quo = V::prep_quo(V::set1(wb1_quo));
    std::size_t j = 0;
    // No 2x unroll here, unlike ntt_fwd_bfly: one radix-4 block already
    // holds four independent Shoup chains, and the extra live registers
    // measurably hurt the double-word backend.
    for (; j + W <= count; j += W) {
      const reg a0 = csub(V::load(x0 + j), v2q);
      const reg a1 = csub(V::load(x1 + j), v2q);
      const reg m2 = shoup_lazy(V::load(x2 + j), va_op, va_quo, vq);
      const reg m3 = shoup_lazy(V::load(x3 + j), va_op, va_quo, vq);
      const reg b0 = csub(V::add(a0, m2), v2q);
      const reg b1 = V::add(a1, m3);
      const reg b2 = csub(V::add(a0, V::sub(v2q, m2)), v2q);
      const reg b3 = V::add(a1, V::sub(v2q, m3));
      const reg c1 = shoup_lazy(b1, vb0_op, vb0_quo, vq);
      const reg c3 = shoup_lazy(b3, vb1_op, vb1_quo, vq);
      V::store(x0 + j, V::add(b0, c1));
      V::store(x1 + j, V::add(b0, V::sub(v2q, c1)));
      V::store(x2 + j, V::add(b2, c3));
      V::store(x3 + j, V::add(b2, V::sub(v2q, c3)));
    }
    S::ntt_fwd_dit4(x0 + j, x1 + j, x2 + j, x3 + j, count - j, wa_op,
                    wa_quo, wb0_op, wb0_quo, wb1_op, wb1_quo, q);
  }

  static void ntt_inv_bfly(u64* x, u64* y, std::size_t count, u64 w_op,
                           u64 w_quo, u64 q) {
    // A single half-register pair (count == W/2 with y contiguous after
    // x, the first inverse stage after the fused tail): swap halves and
    // butterfly in-register instead of falling through to scalar tails.
    // Mirrors the main loop operation-for-operation, so bit-exact.
    if (count == W / 2 && y == x + count) {
      const reg vq = V::set1(q);
      const reg v2q = V::set1(q << 1);
      const reg vop = V::set1(w_op);
      const reg vquo = V::prep_quo(V::set1(w_quo));
      const reg v = V::load(x);   // [xs|ys]
      const reg w = V::swaph(v);  // [ys|xs]
      const reg sum = csub(V::add(v, w), v2q);
      // High lanes hold (x + 2q - y) = w + 2q - v there.
      const reg t = shoup_lazy(V::add(w, V::sub(v2q, v)), vop, vquo, vq);
      V::store(x, V::blend(V::hih_mask(), t, sum));
      return;
    }
    const reg vq = V::set1(q);
    const reg v2q = V::set1(q << 1);
    const reg vop = V::set1(w_op);
    const reg vquo = V::prep_quo(V::set1(w_quo));
    std::size_t j = 0;
    // 2x unroll: two independent butterfly chains hide the Shoup
    // multiply latency (see mul_shoup).
    for (; j + 2 * W <= count; j += 2 * W) {
      const reg u0 = V::load(x + j);
      const reg v0 = V::load(y + j);
      const reg u1 = V::load(x + j + W);
      const reg v1 = V::load(y + j + W);
      V::store(x + j, csub(V::add(u0, v0), v2q));
      V::store(y + j,
               shoup_lazy(V::add(u0, V::sub(v2q, v0)), vop, vquo, vq));
      V::store(x + j + W, csub(V::add(u1, v1), v2q));
      V::store(y + j + W,
               shoup_lazy(V::add(u1, V::sub(v2q, v1)), vop, vquo, vq));
    }
    for (; j + W <= count; j += W) {
      const reg u = V::load(x + j);
      const reg v = V::load(y + j);
      V::store(x + j, csub(V::add(u, v), v2q));
      V::store(y + j,
               shoup_lazy(V::add(u, V::sub(v2q, v)), vop, vquo, vq));
    }
    S::ntt_inv_bfly(x + j, y + j, count - j, w_op, w_quo, q);
  }

  static void ntt_inv_last(u64* x, u64* y, std::size_t count, u64 ninv_op,
                           u64 ninv_quo, u64 nw_op, u64 nw_quo, u64 q) {
    const reg vq = V::set1(q);
    const reg v2q = V::set1(q << 1);
    const reg vn_op = V::set1(ninv_op);
    const reg vn_quo = V::prep_quo(V::set1(ninv_quo));
    const reg vw_op = V::set1(nw_op);
    const reg vw_quo = V::prep_quo(V::set1(nw_quo));
    std::size_t j = 0;
    for (; j + W <= count; j += W) {
      const reg u = V::load(x + j);
      const reg v = V::load(y + j);
      V::store(x + j, shoup_full(V::add(u, v), vn_op, vn_quo, vq));
      V::store(y + j,
               shoup_full(V::add(u, V::sub(v2q, v)), vw_op, vw_quo, vq));
    }
    S::ntt_inv_last(x + j, y + j, count - j, ninv_op, ninv_quo, nw_op,
                    nw_quo, q);
  }

  // Fused final forward double pass (strides 2 then 1, full correction):
  // every butterfly partner sits inside the same register, so the stage
  // runs on lane swaps and masked blends instead of scalar fallback.
  // Redundant lanes of the lazy products (a multiply is only meaningful
  // on half the lanes) are computed and discarded; their operands stay
  // inside the documented [0, 4q) domain, so no spurious overflow.
  static void ntt_fwd_tail(u64* a, std::size_t n, const u64* wa_op,
                           const u64* wa_quo, const u64* wb_op,
                           const u64* wb_quo, u64 q) {
    const reg vq = V::set1(q);
    const reg v2q = V::set1(q << 1);
    const auto modd = V::odd_mask();
    const auto mhi2 = V::hi2_mask();
    std::size_t j = 0;
    for (; j + W <= n; j += W) {
      const reg x = V::load(a + j);
      const reg va_op = V::rep4_load(wa_op + j / 4);
      const reg va_quo = V::prep_quo(V::rep4_load(wa_quo + j / 4));
      const reg vb_op = V::rep2_load(wb_op + j / 2);
      const reg vb_quo = V::prep_quo(V::rep2_load(wb_quo + j / 2));
      // Stage A (stride 2): partners are lanes i and i^2. Per quad
      // [x0,x1,x2,x3]: u = [a0,a1,a0,a1], m = [m2,m3,m2,m3], and the
      // lower/upper halves add m / 2q-m respectively.
      const reg corr = csub(x, v2q);
      const reg mla = shoup_lazy(x, va_op, va_quo, vq);
      const reg u = V::blend(mhi2, V::swap2(corr), corr);
      const reg mv = V::blend(mhi2, mla, V::swap2(mla));
      reg b = V::add(u, V::blend(mhi2, V::sub(v2q, mv), mv));
      // The scalar reference corrects b0/b2 (even lanes) only.
      b = V::blend(modd, b, csub(b, v2q));
      // Stage B (stride 1): partners are lanes i and i^1.
      const reg c = shoup_lazy(b, vb_op, vb_quo, vq);
      const reg u2 = V::blend(modd, V::swap1(b), b);
      const reg cv = V::blend(modd, c, V::swap1(c));
      reg o = V::add(u2, V::blend(modd, V::sub(v2q, cv), cv));
      o = csub(csub(o, v2q), vq);
      V::store(a + j, o);
    }
    S::ntt_fwd_tail(a + j, n - j, wa_op + j / 4, wa_quo + j / 4,
                    wb_op + j / 2, wb_quo + j / 2, q);
  }

  // Fused first two inverse passes (strides 1 then 2), in-register.
  static void ntt_inv_tail(u64* a, std::size_t n, const u64* w1_op,
                           const u64* w1_quo, const u64* w2_op,
                           const u64* w2_quo, u64 q) {
    const reg vq = V::set1(q);
    const reg v2q = V::set1(q << 1);
    const auto modd = V::odd_mask();
    const auto mhi2 = V::hi2_mask();
    std::size_t j = 0;
    for (; j + W <= n; j += W) {
      const reg x = V::load(a + j);
      const reg v1_op = V::rep2_load(w1_op + j / 2);
      const reg v1_quo = V::prep_quo(V::rep2_load(w1_quo + j / 2));
      const reg v2_op = V::rep4_load(w2_op + j / 4);
      const reg v2_quo = V::prep_quo(V::rep4_load(w2_quo + j / 4));
      // Stage t == 1: pair (2i, 2i+1) — sum lands on the even lane, the
      // lazy twiddled difference on the odd lane.
      reg sw = V::swap1(x);
      reg s = csub(V::add(x, sw), v2q);
      reg d = V::add(V::blend(modd, sw, x),
                     V::sub(v2q, V::blend(modd, x, sw)));
      reg r = V::blend(modd, shoup_lazy(d, v1_op, v1_quo, vq), s);
      // Stage t == 2: partners are lanes i and i^2 within each quad.
      sw = V::swap2(r);
      s = csub(V::add(r, sw), v2q);
      d = V::add(V::blend(mhi2, sw, r), V::sub(v2q, V::blend(mhi2, r, sw)));
      r = V::blend(mhi2, shoup_lazy(d, v2_op, v2_quo, vq), s);
      V::store(a + j, r);
    }
    S::ntt_inv_tail(a + j, n - j, w1_op + j / 2, w1_quo + j / 2,
                    w2_op + j / 4, w2_quo + j / 4, q);
  }

  // Twiddle vector for the constant-geometry stages: table index is
  // j & mask with mask+1 a power of two. When the period covers a whole
  // vector, aligned chunks never straddle the wrap, so a plain unaligned
  // load works; shorter periods repeat within the vector and are
  // materialised once before the loop.
  static void cg_fwd_stage(const u64* src, u64* dst, std::size_t half,
                           const u64* w_op, const u64* w_quo,
                           std::size_t mask, u64 q) {
    const reg vq = V::set1(q);
    const std::size_t period = mask + 1;
    u64 pat_op[W], pat_quo[W];
    if (period < W) {
      for (std::size_t i = 0; i < W; ++i) {
        pat_op[i] = w_op[i & mask];
        pat_quo[i] = w_quo[i & mask];
      }
    }
    const reg rep_op = V::load(period < W ? pat_op : w_op);
    const reg rep_quo = V::prep_quo(V::load(period < W ? pat_quo : w_quo));
    std::size_t j = 0;
    for (; j + W <= half; j += W) {
      const reg op = period < W ? rep_op : V::load(w_op + (j & mask));
      const reg quo = period < W
                          ? rep_quo
                          : V::prep_quo(V::load(w_quo + (j & mask)));
      const reg x = V::load(src + j);
      const reg y = shoup_full(V::load(src + j + half), op, quo, vq);
      const reg sum = csub(V::add(x, y), vq);
      const reg diff = submod(x, y, vq);
      V::interleave_store(dst + 2 * j, sum, diff);
    }
    for (; j < half; ++j) {
      const std::size_t w = j & mask;
      const u64 x = src[j];
      const u64 y = S::shoup_mul(src[j + half], w_op[w], w_quo[w], q);
      const u64 sum = x + y;
      dst[2 * j] = sum >= q ? sum - q : sum;
      dst[2 * j + 1] = x >= y ? x - y : x + q - y;
    }
  }

  static void cg_inv_stage(const u64* src, u64* dst, std::size_t half,
                           const u64* w_op, const u64* w_quo,
                           std::size_t mask, u64 q) {
    const reg vq = V::set1(q);
    const std::size_t period = mask + 1;
    u64 pat_op[W], pat_quo[W];
    if (period < W) {
      for (std::size_t i = 0; i < W; ++i) {
        pat_op[i] = w_op[i & mask];
        pat_quo[i] = w_quo[i & mask];
      }
    }
    const reg rep_op = V::load(period < W ? pat_op : w_op);
    const reg rep_quo = V::prep_quo(V::load(period < W ? pat_quo : w_quo));
    std::size_t j = 0;
    for (; j + W <= half; j += W) {
      const reg op = period < W ? rep_op : V::load(w_op + (j & mask));
      const reg quo = period < W
                          ? rep_quo
                          : V::prep_quo(V::load(w_quo + (j & mask)));
      reg u, v;
      V::deinterleave_load(src + 2 * j, &u, &v);
      V::store(dst + j, csub(V::add(u, v), vq));
      V::store(dst + j + half,
               shoup_full(V::add(u, V::sub(vq, v)), op, quo, vq));
    }
    for (; j < half; ++j) {
      const std::size_t w = j & mask;
      const u64 u = src[2 * j];
      const u64 v = src[2 * j + 1];
      const u64 sum = u + v;
      dst[j] = sum >= q ? sum - q : sum;
      dst[j + half] = S::shoup_mul(u + q - v, w_op[w], w_quo[w], q);
    }
  }

  static void permute(const u64* a, const u64* src_idx, const u64* flip,
                      u64* out, std::size_t n, u64 q) {
    const reg vq = V::set1(q);
    std::size_t i = 0;
    for (; i + W <= n; i += W) {
      const reg v = V::gather(a, V::load(src_idx + i));
      const reg f = V::load(flip + i);
      const reg neg = V::blend(V::eq0(v), V::set1(0), V::sub(vq, v));
      V::store(out + i, V::bor(V::band(f, neg), V::bandn(f, v)));
    }
    scalar::permute(a, src_idx + i, flip + i, out + i, n - i, q);
  }

  static void neg_rev(const u64* a, u64* out, std::size_t n, u64 q) {
    const reg vq = V::set1(q);
    out[0] = a[0];
    std::size_t j = 1;
    // out[j..j+W) = negate(a[n-j-W+1..n-j]) reversed; stop while the
    // source window stays within [1, n).
    for (; j + W <= n; j += W) {
      const reg v = V::reverse(V::load(a + n - j - (W - 1)));
      V::store(out + j, V::blend(V::eq0(v), V::set1(0), V::sub(vq, v)));
    }
    for (; j < n; ++j) {
      const u64 v = a[n - j];
      out[j] = v == 0 ? 0 : q - v;
    }
  }

  static void rescale_round(const u64* xl, const u64* xp, u64* out,
                            std::size_t n, u64 pv, u64 q, u64 q_barrett,
                            u64 pinv_op, u64 pinv_quo) {
    const reg vq = V::set1(q);
    const reg vpv = V::set1(pv);
    const reg vhalf = V::set1(pv >> 1);
    const reg vbar = V::set1(q_barrett);
    const reg vp_op = V::set1(pinv_op);
    const reg vp_quo = V::prep_quo(V::set1(pinv_quo));
    std::size_t i = 0;
    for (; i + W <= n; i += W) {
      const reg r = V::load(xp + i);
      const auto up = V::gt(r, vhalf);
      reg t = V::blend(up, V::sub(vpv, r), r);
      // t mod q: approximate quotient undershoots by < 2. This Barrett
      // step always runs on the 64-bit mulhi, regardless of limb width.
      t = V::sub(t, V::mullo(V::mulhi(t, vbar), vq));
      t = csub(csub(t, vq), vq);
      const reg x = V::load(xl + i);
      const reg sum = csub(V::add(x, t), vq);
      const reg dif = submod(x, t, vq);
      const reg diff = V::blend(up, sum, dif);
      V::store(out + i, shoup_full(diff, vp_op, vp_quo, vq));
    }
    S::rescale_round(xl + i, xp + i, out + i, n - i, pv, q, q_barrett,
                     pinv_op, pinv_quo);
  }

  // Barrett reduction of arbitrary 64-bit values: the same quotient
  // estimate as the rescale_round body, always on the 64-bit mulhi (no
  // Shoup multiply, so the IFMA table reuses the 64-bit instantiation
  // directly and the tail can call the plain scalar body).
  static void barrett_reduce(const u64* x, u64* out, std::size_t n, u64 q,
                             u64 q_barrett) {
    const reg vq = V::set1(q);
    const reg vbar = V::set1(q_barrett);
    std::size_t i = 0;
    // 2x unroll: two independent mulhi/mullo chains in flight (see
    // mul_shoup).
    for (; i + 2 * W <= n; i += 2 * W) {
      reg t0 = V::load(x + i);
      reg t1 = V::load(x + i + W);
      t0 = V::sub(t0, V::mullo(V::mulhi(t0, vbar), vq));
      t1 = V::sub(t1, V::mullo(V::mulhi(t1, vbar), vq));
      V::store(out + i, csub(csub(t0, vq), vq));
      V::store(out + i + W, csub(csub(t1, vq), vq));
    }
    for (; i + W <= n; i += W) {
      reg t = V::load(x + i);
      t = V::sub(t, V::mullo(V::mulhi(t, vbar), vq));
      V::store(out + i, csub(csub(t, vq), vq));
    }
    scalar::barrett_reduce(x + i, out + i, n - i, q, q_barrett);
  }
};

}  // namespace simd
}  // namespace cham
