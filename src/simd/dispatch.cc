#include "simd/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "simd/tables.h"

namespace cham {
namespace simd {

namespace {

struct Dispatch {
  const Kernels* table;
  Level level;
};

bool cpu_has(Level level) {
#if defined(__x86_64__) || defined(__i386__)
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
      return __builtin_cpu_supports("avx2");
    case Level::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq");
    case Level::kAvx512Ifma:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512ifma");
  }
  return false;
#else
  return level == Level::kScalar;
#endif
}

// Table for `level` iff both the backend was compiled in and the CPU can
// run it.
const Kernels* usable(Level level) {
  if (!cpu_has(level)) return nullptr;
  switch (level) {
    case Level::kScalar:
      return scalar_table();
    case Level::kAvx2:
      return avx2_table();
    case Level::kAvx512:
      return avx512_table();
    case Level::kAvx512Ifma:
      return avx512ifma_table();
  }
  return nullptr;
}

Level autodetect() {
  for (Level level : {Level::kAvx512Ifma, Level::kAvx512, Level::kAvx2}) {
    if (usable(level) != nullptr) return level;
  }
  return Level::kScalar;
}

Dispatch detect() {
  std::string warning;
  const Level level =
      resolve_level(std::getenv("CHAM_SIMD_LEVEL"), &warning);
  if (!warning.empty()) {
    // Once per process: detect() only runs from the dispatch() static
    // initializer. A misspelt or unusable override silently running a
    // different level has burnt enough benchmarking time to warrant a
    // visible note; the fallback itself stays non-fatal.
    std::fprintf(stderr, "cham: %s\n", warning.c_str());
  }
  return {usable(level), level};
}

const Dispatch& dispatch() {
  static const Dispatch d = [] {
    Dispatch picked = detect();
    obs::MetricsRegistry::global()
        .gauge("simd.level")
        .set(static_cast<double>(static_cast<int>(picked.level)));
    return picked;
  }();
  return d;
}

}  // namespace

Level resolve_level(const char* env, std::string* warning) {
  if (warning != nullptr) warning->clear();
  if (env == nullptr || env[0] == '\0') return autodetect();
  Level want;
  if (!parse_level(env, &want)) {
    const Level fallback = autodetect();
    if (warning != nullptr) {
      *warning = std::string("CHAM_SIMD_LEVEL=") + env +
                 " names no known dispatch level "
                 "(scalar, avx2, avx512, avx512ifma); using " +
                 level_name(fallback);
    }
    return fallback;
  }
  if (usable(want) == nullptr) {
    const Level fallback = autodetect();
    if (warning != nullptr) {
      *warning = std::string("CHAM_SIMD_LEVEL=") + env + " is " +
                 (cpu_has(want) ? "not compiled into this binary"
                                : "not supported by this CPU") +
                 "; using " + level_name(fallback);
    }
    return fallback;
  }
  return want;
}

bool ifma_context_all_wide(Level level, const u64* moduli,
                           std::size_t count) {
  if (level != Level::kAvx512Ifma || count == 0) return false;
  for (std::size_t i = 0; i < count; ++i) {
    if (ifma_eligible(moduli[i])) return false;
  }
  return true;
}

bool note_ifma_wide_context(const u64* moduli, std::size_t count) {
  if (!ifma_context_all_wide(active_level(), moduli, count)) return false;
  obs::MetricsRegistry::global().counter("simd.ifma.wide_context").add(1);
  static std::atomic_flag noted = ATOMIC_FLAG_INIT;
  if (noted.test_and_set(std::memory_order_relaxed)) return false;
  std::fprintf(stderr,
               "cham: avx512ifma selected but every context modulus is >= "
               "2^50 (kIfmaQBound); the whole context runs on the "
               "double-word two-limb datapath\n");
  return true;
}

const Kernels& active() { return *dispatch().table; }

Level active_level() { return dispatch().level; }

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
    case Level::kAvx512Ifma:
      return "avx512ifma";
  }
  return "unknown";
}

const Kernels* table_for(Level level) { return usable(level); }

bool cpu_supports(Level level) { return cpu_has(level); }

bool parse_level(const char* s, Level* out) {
  if (s == nullptr || out == nullptr) return false;
  if (std::strcmp(s, "scalar") == 0) {
    *out = Level::kScalar;
  } else if (std::strcmp(s, "avx2") == 0) {
    *out = Level::kAvx2;
  } else if (std::strcmp(s, "avx512") == 0) {
    *out = Level::kAvx512;
  } else if (std::strcmp(s, "avx512ifma") == 0) {
    *out = Level::kAvx512Ifma;
  } else {
    return false;
  }
  return true;
}

}  // namespace simd
}  // namespace cham
