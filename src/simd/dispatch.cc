#include "simd/kernels.h"

#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "simd/tables.h"

namespace cham {
namespace simd {

namespace {

struct Dispatch {
  const Kernels* table;
  Level level;
};

bool cpu_has(Level level) {
#if defined(__x86_64__) || defined(__i386__)
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
      return __builtin_cpu_supports("avx2");
    case Level::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq");
  }
  return false;
#else
  return level == Level::kScalar;
#endif
}

// Table for `level` iff both the backend was compiled in and the CPU can
// run it.
const Kernels* usable(Level level) {
  if (!cpu_has(level)) return nullptr;
  switch (level) {
    case Level::kScalar:
      return scalar_table();
    case Level::kAvx2:
      return avx2_table();
    case Level::kAvx512:
      return avx512_table();
  }
  return nullptr;
}

Dispatch detect() {
  // Explicit override first: an unknown or unusable CHAM_SIMD_LEVEL falls
  // through to auto-detection rather than crashing mid-startup.
  if (const char* env = std::getenv("CHAM_SIMD_LEVEL")) {
    Level want;
    if (parse_level(env, &want)) {
      if (const Kernels* t = usable(want)) return {t, want};
    }
  }
  for (Level level : {Level::kAvx512, Level::kAvx2}) {
    if (const Kernels* t = usable(level)) return {t, level};
  }
  return {scalar_table(), Level::kScalar};
}

const Dispatch& dispatch() {
  static const Dispatch d = [] {
    Dispatch picked = detect();
    obs::MetricsRegistry::global()
        .gauge("simd.level")
        .set(static_cast<double>(static_cast<int>(picked.level)));
    return picked;
  }();
  return d;
}

}  // namespace

const Kernels& active() { return *dispatch().table; }

Level active_level() { return dispatch().level; }

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const Kernels* table_for(Level level) { return usable(level); }

bool cpu_supports(Level level) { return cpu_has(level); }

bool parse_level(const char* s, Level* out) {
  if (s == nullptr || out == nullptr) return false;
  if (std::strcmp(s, "scalar") == 0) {
    *out = Level::kScalar;
  } else if (std::strcmp(s, "avx2") == 0) {
    *out = Level::kAvx2;
  } else if (std::strcmp(s, "avx512") == 0) {
    *out = Level::kAvx512;
  } else {
    return false;
  }
  return true;
}

}  // namespace simd
}  // namespace cham
