// Double-word (two 52-bit limb) scalar reference kernels (see
// kernels_scalar104.h).
//
// Each body is structurally identical to its 64-bit sibling in
// kernels_scalar.cc — same correction points, same lazy ranges — with
// every wide multiply (the Shoup quotient estimate and the Barrett
// quotient) routed through the limb-recomposed mulhi64. Because that
// recomposition is exact, every value below is bit-identical to the
// 64-bit reference; keep the two files in lockstep all the same — a
// structural divergence here silently weakens the wide-modulus IFMA
// fuzz oracle.
#include "simd/kernels_scalar104.h"

namespace cham {
namespace simd {
namespace scalar104 {

void mul_shoup(const u64* x, const u64* w_op, const u64* w_quo, u64* out,
               std::size_t n, u64 q) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = shoup_mul(x[i], w_op[i], w_quo[i], q);
  }
}

// The accumulating products fold the lazy result straight into the
// accumulator and reduce the sum from [0, 3q) with two conditional
// subtractions — one op fewer than reduce-then-add, mirroring the
// vector backend's dedicated double-word MAC body. The fully reduced
// output is the same value either way.
void mul_shoup_acc(const u64* x, const u64* w_op, const u64* w_quo,
                   u64* out, std::size_t n, u64 q) {
  const u64 two_q = q << 1;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 r = shoup_mul_lazy(x[i], w_op[i], w_quo[i], q);
    u64 s = out[i] + r;
    s = s >= two_q ? s - two_q : s;
    out[i] = s >= q ? s - q : s;
  }
}

void mul_scalar_shoup(const u64* x, u64 op, u64 quo, u64* out,
                      std::size_t n, u64 q) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = shoup_mul(x[i], op, quo, q);
  }
}

void mul_scalar_shoup_acc(const u64* x, u64 op, u64 quo, u64* out,
                          std::size_t n, u64 q) {
  const u64 two_q = q << 1;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 r = shoup_mul_lazy(x[i], op, quo, q);
    u64 s = out[i] + r;
    s = s >= two_q ? s - two_q : s;
    out[i] = s >= q ? s - q : s;
  }
}

void ntt_fwd_bfly(u64* x, u64* y, std::size_t count, u64 w_op, u64 w_quo,
                  u64 q) {
  const u64 two_q = q << 1;
  for (std::size_t j = 0; j < count; ++j) {
    u64 u = x[j];
    u = u >= two_q ? u - two_q : u;
    const u64 v = shoup_mul_lazy(y[j], w_op, w_quo, q);
    x[j] = u + v;
    y[j] = u + two_q - v;
  }
}

void ntt_fwd_dit4(u64* x0, u64* x1, u64* x2, u64* x3, std::size_t count,
                  u64 wa_op, u64 wa_quo, u64 wb0_op, u64 wb0_quo,
                  u64 wb1_op, u64 wb1_quo, u64 q) {
  const u64 two_q = q << 1;
  for (std::size_t j = 0; j < count; ++j) {
    u64 a0 = x0[j];
    u64 a1 = x1[j];
    a0 = a0 >= two_q ? a0 - two_q : a0;
    a1 = a1 >= two_q ? a1 - two_q : a1;
    const u64 m2 = shoup_mul_lazy(x2[j], wa_op, wa_quo, q);
    const u64 m3 = shoup_mul_lazy(x3[j], wa_op, wa_quo, q);
    u64 b0 = a0 + m2;
    const u64 b1 = a1 + m3;
    u64 b2 = a0 + two_q - m2;
    const u64 b3 = a1 + two_q - m3;
    b0 = b0 >= two_q ? b0 - two_q : b0;
    b2 = b2 >= two_q ? b2 - two_q : b2;
    const u64 c1 = shoup_mul_lazy(b1, wb0_op, wb0_quo, q);
    const u64 c3 = shoup_mul_lazy(b3, wb1_op, wb1_quo, q);
    x0[j] = b0 + c1;
    x1[j] = b0 + two_q - c1;
    x2[j] = b2 + c3;
    x3[j] = b2 + two_q - c3;
  }
}

void ntt_inv_bfly(u64* x, u64* y, std::size_t count, u64 w_op, u64 w_quo,
                  u64 q) {
  const u64 two_q = q << 1;
  for (std::size_t j = 0; j < count; ++j) {
    const u64 u = x[j];
    const u64 v = y[j];
    u64 s = u + v;
    s = s >= two_q ? s - two_q : s;
    x[j] = s;
    y[j] = shoup_mul_lazy(u + two_q - v, w_op, w_quo, q);
  }
}

void ntt_inv_last(u64* x, u64* y, std::size_t count, u64 ninv_op,
                  u64 ninv_quo, u64 nw_op, u64 nw_quo, u64 q) {
  const u64 two_q = q << 1;
  for (std::size_t j = 0; j < count; ++j) {
    const u64 u = x[j];
    const u64 v = y[j];
    x[j] = shoup_mul(u + v, ninv_op, ninv_quo, q);
    y[j] = shoup_mul(u + two_q - v, nw_op, nw_quo, q);
  }
}

void ntt_fwd_tail(u64* a, std::size_t n, const u64* wa_op,
                  const u64* wa_quo, const u64* wb_op, const u64* wb_quo,
                  u64 q) {
  const u64 two_q = q << 1;
  for (std::size_t i = 0; i < n / 4; ++i) {
    u64* x = a + 4 * i;
    u64 a0 = x[0];
    u64 a1 = x[1];
    a0 = a0 >= two_q ? a0 - two_q : a0;
    a1 = a1 >= two_q ? a1 - two_q : a1;
    const u64 m2 = shoup_mul_lazy(x[2], wa_op[i], wa_quo[i], q);
    const u64 m3 = shoup_mul_lazy(x[3], wa_op[i], wa_quo[i], q);
    u64 b0 = a0 + m2;
    const u64 b1 = a1 + m3;
    u64 b2 = a0 + two_q - m2;
    const u64 b3 = a1 + two_q - m3;
    b0 = b0 >= two_q ? b0 - two_q : b0;
    b2 = b2 >= two_q ? b2 - two_q : b2;
    const u64 c1 = shoup_mul_lazy(b1, wb_op[2 * i], wb_quo[2 * i], q);
    const u64 c3 = shoup_mul_lazy(b3, wb_op[2 * i + 1], wb_quo[2 * i + 1], q);
    u64 o0 = b0 + c1;
    u64 o1 = b0 + two_q - c1;
    u64 o2 = b2 + c3;
    u64 o3 = b2 + two_q - c3;
    o0 = o0 >= two_q ? o0 - two_q : o0;
    o1 = o1 >= two_q ? o1 - two_q : o1;
    o2 = o2 >= two_q ? o2 - two_q : o2;
    o3 = o3 >= two_q ? o3 - two_q : o3;
    o0 = o0 >= q ? o0 - q : o0;
    o1 = o1 >= q ? o1 - q : o1;
    o2 = o2 >= q ? o2 - q : o2;
    o3 = o3 >= q ? o3 - q : o3;
    x[0] = o0;
    x[1] = o1;
    x[2] = o2;
    x[3] = o3;
  }
}

void ntt_inv_tail(u64* a, std::size_t n, const u64* w1_op,
                  const u64* w1_quo, const u64* w2_op, const u64* w2_quo,
                  u64 q) {
  const u64 two_q = q << 1;
  for (std::size_t i = 0; i < n / 2; ++i) {
    u64* x = a + 2 * i;
    const u64 u = x[0];
    const u64 v = x[1];
    u64 s = u + v;
    s = s >= two_q ? s - two_q : s;
    x[0] = s;
    x[1] = shoup_mul_lazy(u + two_q - v, w1_op[i], w1_quo[i], q);
  }
  for (std::size_t i = 0; i < n / 4; ++i) {
    u64* x = a + 4 * i;
    const u64 u0 = x[0];
    const u64 u1 = x[1];
    const u64 v0 = x[2];
    const u64 v1 = x[3];
    u64 s0 = u0 + v0;
    u64 s1 = u1 + v1;
    s0 = s0 >= two_q ? s0 - two_q : s0;
    s1 = s1 >= two_q ? s1 - two_q : s1;
    x[0] = s0;
    x[1] = s1;
    x[2] = shoup_mul_lazy(u0 + two_q - v0, w2_op[i], w2_quo[i], q);
    x[3] = shoup_mul_lazy(u1 + two_q - v1, w2_op[i], w2_quo[i], q);
  }
}

void cg_fwd_stage(const u64* src, u64* dst, std::size_t half,
                  const u64* w_op, const u64* w_quo, std::size_t mask,
                  u64 q) {
  for (std::size_t j = 0; j < half; ++j) {
    const std::size_t w = j & mask;
    const u64 x = src[j];
    const u64 y = shoup_mul(src[j + half], w_op[w], w_quo[w], q);
    const u64 sum = x + y;
    dst[2 * j] = sum >= q ? sum - q : sum;
    dst[2 * j + 1] = x >= y ? x - y : x + q - y;
  }
}

void cg_inv_stage(const u64* src, u64* dst, std::size_t half,
                  const u64* w_op, const u64* w_quo, std::size_t mask,
                  u64 q) {
  for (std::size_t j = 0; j < half; ++j) {
    const std::size_t w = j & mask;
    const u64 u = src[2 * j];
    const u64 v = src[2 * j + 1];
    const u64 sum = u + v;
    dst[j] = sum >= q ? sum - q : sum;
    dst[j + half] = shoup_mul(u + q - v, w_op[w], w_quo[w], q);
  }
}

void rescale_round(const u64* xl, const u64* xp, u64* out, std::size_t n,
                   u64 pv, u64 q, u64 q_barrett, u64 pinv_op, u64 pinv_quo) {
  const u64 half = pv >> 1;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 r = xp[i];
    const bool up = r > half;
    u64 t = up ? pv - r : r;
    // Barrett reduction of t on the limb-recomposed mulhi64 — the same
    // quotient as the 64-bit path (the recomposition is exact).
    t -= mulhi64(t, q_barrett) * q;
    if (t >= q) t -= q;
    if (t >= q) t -= q;
    u64 diff;
    if (up) {
      const u64 s = xl[i] + t;
      diff = s >= q ? s - q : s;
    } else {
      diff = xl[i] >= t ? xl[i] - t : xl[i] + q - t;
    }
    out[i] = shoup_mul(diff, pinv_op, pinv_quo, q);
  }
}

void barrett_reduce(const u64* x, u64* out, std::size_t n, u64 q,
                    u64 q_barrett) {
  for (std::size_t i = 0; i < n; ++i) {
    u64 t = x[i] - mulhi64(x[i], q_barrett) * q;
    if (t >= q) t -= q;
    if (t >= q) t -= q;
    out[i] = t;
  }
}

}  // namespace scalar104

const Kernels* scalar104_table() {
  static const Kernels table = {
      scalar::add,
      scalar::sub,
      scalar::negate,
      scalar104::mul_shoup,
      scalar104::mul_shoup_acc,
      scalar104::mul_scalar_shoup,
      scalar104::mul_scalar_shoup_acc,
      scalar104::ntt_fwd_bfly,
      scalar104::ntt_fwd_dit4,
      scalar104::ntt_inv_bfly,
      scalar104::ntt_inv_last,
      scalar104::ntt_fwd_tail,
      scalar104::ntt_inv_tail,
      scalar104::cg_fwd_stage,
      scalar104::cg_inv_stage,
      scalar::permute,
      scalar::neg_rev,
      scalar104::rescale_round,
      scalar104::barrett_reduce,
  };
  return &table;
}

}  // namespace simd
}  // namespace cham
