// 64-byte-aligned storage for polynomial limbs.
//
// Every RnsPoly/ShoupPoly buffer is allocated on a cache-line (and
// AVX-512 register) boundary so the vector kernels can issue aligned
// loads/stores and limbs never straddle lines shared with other data.
// Storage comes from the slab pool in common/mem_pool.h (plain aligned
// operator new when CHAM_POOL=OFF), so steady-state loops recycle limb
// buffers instead of hitting the system allocator. The allocator is
// stateless either way: AlignedVec converts freely between
// instantiations and compares equal everywhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <vector>

#include "common/mem_pool.h"

namespace cham {
namespace simd {

inline constexpr std::size_t kAlignment = 64;

template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(mem::pool_alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    mem::pool_free(p, n * sizeof(T));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

using AlignedU64Vec = AlignedVec<std::uint64_t>;

}  // namespace simd
}  // namespace cham
