// Internal: the 52-bit-limb scalar reference for the AVX-512-IFMA
// backend.
//
// vpmadd52luq/vpmadd52huq compute acc + low/high 52 bits of a 52x52-bit
// product, so the IFMA Shoup multiply replaces the 64-bit quotient
// estimate hi = floor(x·quo64 / 2^64) with hi52 = floor(x·quo52 / 2^52)
// where quo52 = floor(w·2^52 / q). The two estimates can differ by one,
// which shifts every Harvey-lazy intermediate by ±q — still inside the
// documented lazy ranges and always congruent mod q, but no longer
// bit-identical to the 64-bit scalar reference. This translation unit
// reimplements every multiply-carrying kernel with the exact 52-bit limb
// semantics (all products masked to 52 bits, quotient derived as
// quo64 >> 12 — the identity floor(floor(w·2^64/q) / 2^12) =
// floor(w·2^52/q) means no separate tables are needed), so the fuzz
// suite can require the IFMA vector kernels to be bit-exact with THIS
// reference, and the vector loop tails can run on it without breaking
// that bit-exactness.
//
// Domain: q < kIfmaQBound (2^50) so lazy values < 4q < 2^52, and every
// multiplicand x < 2^52 (the hardware masks operands to 52 bits).
#pragma once

#include "simd/kernels.h"
#include "simd/kernels_scalar.h"

namespace cham {
namespace simd {
namespace scalar52 {

inline constexpr u64 kMask52 = (1ULL << 52) - 1;

// acc + low/high 52 bits of (a mod 2^52)·(b mod 2^52): the scalar
// mirrors of vpmadd52luq / vpmadd52huq (64-bit wraparound add).
inline u64 madd52lo(u64 acc, u64 a, u64 b) {
  return acc + (static_cast<u64>(static_cast<unsigned __int128>(a & kMask52) *
                                 (b & kMask52)) &
                kMask52);
}
inline u64 madd52hi(u64 acc, u64 a, u64 b) {
  return acc + static_cast<u64>(
                   (static_cast<unsigned __int128>(a & kMask52) *
                    (b & kMask52)) >>
                   52);
}

// x·w mod q in [0, 2q) via the 52-bit quotient estimate. Takes the
// standard 64-bit Shoup quotient and derives quo52 = quo >> 12, exactly
// like the vector backend's register-level prep. Requires x < 2^52 and
// q < 2^50; the result r = x·w - hi52·q satisfies r < 2q < 2^51, so the
// mod-2^52 subtraction recovers it exactly.
inline u64 shoup_mul_lazy(u64 x, u64 op, u64 quo, u64 q) {
  const u64 hi = madd52hi(0, x, quo >> 12);
  return (madd52lo(0, x, op) - madd52lo(0, hi, q)) & kMask52;
}

inline u64 shoup_mul(u64 x, u64 op, u64 quo, u64 q) {
  const u64 r = shoup_mul_lazy(x, op, quo, q);
  return r >= q ? r - q : r;
}

void mul_shoup(const u64* x, const u64* w_op, const u64* w_quo, u64* out,
               std::size_t n, u64 q);
void mul_shoup_acc(const u64* x, const u64* w_op, const u64* w_quo,
                   u64* out, std::size_t n, u64 q);
void mul_scalar_shoup(const u64* x, u64 op, u64 quo, u64* out,
                      std::size_t n, u64 q);
void mul_scalar_shoup_acc(const u64* x, u64 op, u64 quo, u64* out,
                          std::size_t n, u64 q);
void ntt_fwd_bfly(u64* x, u64* y, std::size_t count, u64 w_op, u64 w_quo,
                  u64 q);
void ntt_fwd_dit4(u64* x0, u64* x1, u64* x2, u64* x3, std::size_t count,
                  u64 wa_op, u64 wa_quo, u64 wb0_op, u64 wb0_quo,
                  u64 wb1_op, u64 wb1_quo, u64 q);
void ntt_inv_bfly(u64* x, u64* y, std::size_t count, u64 w_op, u64 w_quo,
                  u64 q);
void ntt_inv_last(u64* x, u64* y, std::size_t count, u64 ninv_op,
                  u64 ninv_quo, u64 nw_op, u64 nw_quo, u64 q);
void ntt_fwd_tail(u64* a, std::size_t n, const u64* wa_op,
                  const u64* wa_quo, const u64* wb_op, const u64* wb_quo,
                  u64 q);
void ntt_inv_tail(u64* a, std::size_t n, const u64* w1_op,
                  const u64* w1_quo, const u64* w2_op, const u64* w2_quo,
                  u64 q);
void cg_fwd_stage(const u64* src, u64* dst, std::size_t half,
                  const u64* w_op, const u64* w_quo, std::size_t mask,
                  u64 q);
void cg_inv_stage(const u64* src, u64* dst, std::size_t half,
                  const u64* w_op, const u64* w_quo, std::size_t mask,
                  u64 q);
void rescale_round(const u64* xl, const u64* xp, u64* out, std::size_t n,
                   u64 pv, u64 q, u64 q_barrett, u64 pinv_op, u64 pinv_quo);

}  // namespace scalar52

// Reference bundle for the IFMA traits (see ScalarRef64 in
// kernels_scalar.h): multiply-free kernels keep the canonical scalar
// implementations — their semantics don't depend on the limb width.
struct ScalarRef52 {
  static inline u64 shoup_mul(u64 x, u64 op, u64 quo, u64 q) {
    return scalar52::shoup_mul(x, op, quo, q);
  }
  static constexpr auto mul_shoup = scalar52::mul_shoup;
  static constexpr auto mul_shoup_acc = scalar52::mul_shoup_acc;
  static constexpr auto mul_scalar_shoup = scalar52::mul_scalar_shoup;
  static constexpr auto mul_scalar_shoup_acc = scalar52::mul_scalar_shoup_acc;
  static constexpr auto ntt_fwd_bfly = scalar52::ntt_fwd_bfly;
  static constexpr auto ntt_fwd_dit4 = scalar52::ntt_fwd_dit4;
  static constexpr auto ntt_inv_bfly = scalar52::ntt_inv_bfly;
  static constexpr auto ntt_inv_last = scalar52::ntt_inv_last;
  static constexpr auto ntt_fwd_tail = scalar52::ntt_fwd_tail;
  static constexpr auto ntt_inv_tail = scalar52::ntt_inv_tail;
  static constexpr auto rescale_round = scalar52::rescale_round;
};

// Full kernel table over the 52-bit reference (multiply-free entries are
// the canonical scalar ones). Not a dispatch level — the fuzz suite uses
// it as the bit-exact oracle for the IFMA vector kernels, and as a
// standalone subject for the 52-bit lazy-range invariant tests.
const Kernels* scalar52_table();

}  // namespace simd
}  // namespace cham
