// Internal: the portable scalar kernels, exported individually so the
// vector backends can reuse them for loop tails (count % lane-width).
// These are the reference semantics every vector kernel must match
// bit-for-bit; the fuzz suite (tests/simd) enforces that.
#pragma once

#include "simd/kernels.h"

namespace cham {
namespace simd {
namespace scalar {

// Element-level Shoup product, exported inline so the vector backends'
// hand-written loop tails (constant-geometry stages) share the exact
// reference semantics. Valid for any 64-bit x (q < 2^63).
inline u64 shoup_mul(u64 x, u64 op, u64 quo, u64 q) {
  const u64 hi = static_cast<u64>(
      (static_cast<unsigned __int128>(x) * quo) >> 64);
  const u64 r = x * op - hi * q;
  return r >= q ? r - q : r;
}

// Lazy variant: result in [0, 2q).
inline u64 shoup_mul_lazy(u64 x, u64 op, u64 quo, u64 q) {
  const u64 hi = static_cast<u64>(
      (static_cast<unsigned __int128>(x) * quo) >> 64);
  return x * op - hi * q;
}

void add(const u64* a, const u64* b, u64* out, std::size_t n, u64 q);
void sub(const u64* a, const u64* b, u64* out, std::size_t n, u64 q);
void negate(const u64* a, u64* out, std::size_t n, u64 q);
void mul_shoup(const u64* x, const u64* w_op, const u64* w_quo, u64* out,
               std::size_t n, u64 q);
void mul_shoup_acc(const u64* x, const u64* w_op, const u64* w_quo,
                   u64* out, std::size_t n, u64 q);
void mul_scalar_shoup(const u64* x, u64 op, u64 quo, u64* out,
                      std::size_t n, u64 q);
void mul_scalar_shoup_acc(const u64* x, u64 op, u64 quo, u64* out,
                          std::size_t n, u64 q);
void ntt_fwd_bfly(u64* x, u64* y, std::size_t count, u64 w_op, u64 w_quo,
                  u64 q);
void ntt_fwd_dit4(u64* x0, u64* x1, u64* x2, u64* x3, std::size_t count,
                  u64 wa_op, u64 wa_quo, u64 wb0_op, u64 wb0_quo,
                  u64 wb1_op, u64 wb1_quo, u64 q);
void ntt_inv_bfly(u64* x, u64* y, std::size_t count, u64 w_op, u64 w_quo,
                  u64 q);
void ntt_inv_last(u64* x, u64* y, std::size_t count, u64 ninv_op,
                  u64 ninv_quo, u64 nw_op, u64 nw_quo, u64 q);
void ntt_fwd_tail(u64* a, std::size_t n, const u64* wa_op,
                  const u64* wa_quo, const u64* wb_op, const u64* wb_quo,
                  u64 q);
void ntt_inv_tail(u64* a, std::size_t n, const u64* w1_op,
                  const u64* w1_quo, const u64* w2_op, const u64* w2_quo,
                  u64 q);
void cg_fwd_stage(const u64* src, u64* dst, std::size_t half,
                  const u64* w_op, const u64* w_quo, std::size_t mask,
                  u64 q);
void cg_inv_stage(const u64* src, u64* dst, std::size_t half,
                  const u64* w_op, const u64* w_quo, std::size_t mask,
                  u64 q);
void permute(const u64* a, const u64* src_idx, const u64* flip, u64* out,
             std::size_t n, u64 q);
void neg_rev(const u64* a, u64* out, std::size_t n, u64 q);
void rescale_round(const u64* xl, const u64* xp, u64* out, std::size_t n,
                   u64 pv, u64 q, u64 q_barrett, u64 pinv_op, u64 pinv_quo);
void barrett_reduce(const u64* x, u64* out, std::size_t n, u64 q,
                    u64 q_barrett);

}  // namespace scalar

// Scalar reference bundle for the width-generic vector bodies
// (kernels_vec.inl): each traits type names the reference whose limb
// semantics match its vector arithmetic, and the shared loop tails call
// through it so tails stay bit-exact with the vector body. The 64-bit
// backends (AVX2/AVX-512) use this one; the IFMA backend uses
// ScalarRef52 (kernels_scalar52.h).
struct ScalarRef64 {
  static inline u64 shoup_mul(u64 x, u64 op, u64 quo, u64 q) {
    return scalar::shoup_mul(x, op, quo, q);
  }
  static constexpr auto mul_shoup = scalar::mul_shoup;
  static constexpr auto mul_shoup_acc = scalar::mul_shoup_acc;
  static constexpr auto mul_scalar_shoup = scalar::mul_scalar_shoup;
  static constexpr auto mul_scalar_shoup_acc = scalar::mul_scalar_shoup_acc;
  static constexpr auto ntt_fwd_bfly = scalar::ntt_fwd_bfly;
  static constexpr auto ntt_fwd_dit4 = scalar::ntt_fwd_dit4;
  static constexpr auto ntt_inv_bfly = scalar::ntt_inv_bfly;
  static constexpr auto ntt_inv_last = scalar::ntt_inv_last;
  static constexpr auto ntt_fwd_tail = scalar::ntt_fwd_tail;
  static constexpr auto ntt_inv_tail = scalar::ntt_inv_tail;
  static constexpr auto rescale_round = scalar::rescale_round;
};

}  // namespace simd
}  // namespace cham
