// Internal: the portable scalar kernels, exported individually so the
// vector backends can reuse them for loop tails (count % lane-width).
// These are the reference semantics every vector kernel must match
// bit-for-bit; the fuzz suite (tests/simd) enforces that.
#pragma once

#include "simd/kernels.h"

namespace cham {
namespace simd {
namespace scalar {

void add(const u64* a, const u64* b, u64* out, std::size_t n, u64 q);
void sub(const u64* a, const u64* b, u64* out, std::size_t n, u64 q);
void negate(const u64* a, u64* out, std::size_t n, u64 q);
void mul_shoup(const u64* x, const u64* w_op, const u64* w_quo, u64* out,
               std::size_t n, u64 q);
void mul_shoup_acc(const u64* x, const u64* w_op, const u64* w_quo,
                   u64* out, std::size_t n, u64 q);
void mul_scalar_shoup(const u64* x, u64 op, u64 quo, u64* out,
                      std::size_t n, u64 q);
void mul_scalar_shoup_acc(const u64* x, u64 op, u64 quo, u64* out,
                          std::size_t n, u64 q);
void ntt_fwd_bfly(u64* x, u64* y, std::size_t count, u64 w_op, u64 w_quo,
                  u64 q);
void ntt_fwd_dit4(u64* x0, u64* x1, u64* x2, u64* x3, std::size_t count,
                  u64 wa_op, u64 wa_quo, u64 wb0_op, u64 wb0_quo,
                  u64 wb1_op, u64 wb1_quo, u64 q);
void ntt_inv_bfly(u64* x, u64* y, std::size_t count, u64 w_op, u64 w_quo,
                  u64 q);
void ntt_inv_last(u64* x, u64* y, std::size_t count, u64 ninv_op,
                  u64 ninv_quo, u64 nw_op, u64 nw_quo, u64 q);
void cg_fwd_stage(const u64* src, u64* dst, std::size_t half,
                  const u64* w_op, const u64* w_quo, std::size_t mask,
                  u64 q);
void cg_inv_stage(const u64* src, u64* dst, std::size_t half,
                  const u64* w_op, const u64* w_quo, std::size_t mask,
                  u64 q);
void permute(const u64* a, const u64* src_idx, const u64* flip, u64* out,
             std::size_t n, u64 q);
void neg_rev(const u64* a, u64* out, std::size_t n, u64 q);
void rescale_round(const u64* xl, const u64* xp, u64* out, std::size_t n,
                   u64 pv, u64 q, u64 q_barrett, u64 pinv_op, u64 pinv_quo);

}  // namespace scalar
}  // namespace simd
}  // namespace cham
