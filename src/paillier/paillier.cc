#include "paillier/paillier.h"

namespace cham {

PaillierKeyPair paillier_keygen(int modulus_bits, Rng& rng) {
  CHAM_CHECK(modulus_bits >= 64);
  const int half = modulus_bits / 2;
  BigUInt p, q, n;
  do {
    p = BigUInt::random_prime(half, rng);
    q = BigUInt::random_prime(modulus_bits - half, rng);
    n = p * q;
  } while (p == q || n.bit_length() < modulus_bits - 1);

  PaillierKeyPair kp;
  kp.pk.n = n;
  kp.pk.n_squared = n * n;
  kp.pk.mont_n2 = std::make_shared<Montgomery>(kp.pk.n_squared);
  kp.sk.lambda = BigUInt::lcm(p - BigUInt(1), q - BigUInt(1));
  // μ = (L(g^λ mod n²))^{-1} mod n with g = n+1:
  // (1+n)^λ = 1 + λ·n (mod n²)  =>  L(...) = λ mod n.
  kp.sk.mu = BigUInt::mod_inverse(kp.sk.lambda % n, n);
  return kp;
}

BigUInt PaillierEncryptor::encrypt(const BigUInt& m, Rng& rng) const {
  CHAM_CHECK_MSG(m < pk_.n, "plaintext must be below n");
  // (1 + m*n) * r^n mod n²
  BigUInt r;
  do {
    r = BigUInt::random_below(pk_.n, rng);
  } while (r.is_zero());
  const BigUInt rn = pk_.mont_n2->pow(r, pk_.n);
  const BigUInt gm = (BigUInt(1) + m * pk_.n) % pk_.n_squared;
  return (gm * rn) % pk_.n_squared;
}

BigUInt PaillierEncryptor::add(const BigUInt& c1, const BigUInt& c2) const {
  return (c1 * c2) % pk_.n_squared;
}

BigUInt PaillierEncryptor::scalar_mul(const BigUInt& c,
                                      const BigUInt& k) const {
  return pk_.mont_n2->pow(c, k);
}

BigUInt PaillierDecryptor::decrypt(const BigUInt& c) const {
  const BigUInt x = pk_.mont_n2->pow(c, sk_.lambda);
  // L(x) = (x - 1) / n
  const BigUInt l = (x - BigUInt(1)) / pk_.n;
  return (l * sk_.mu) % pk_.n;
}

}  // namespace cham
