// Paillier additively-homomorphic cryptosystem — the baseline FATE uses
// for HeteroLR before the paper swaps it for B/FV (Sec. V-B3).
//
// Standard scheme with the g = n+1 optimisation:
//   Enc(m; r) = (1 + m·n) · r^n  mod n²
//   Dec(c)    = L(c^λ mod n²) · μ mod n,  L(x) = (x-1)/n
// Homomorphic addition = ciphertext product; plaintext scaling =
// ciphertext exponentiation. A matrix-vector product therefore costs one
// modular exponentiation per matrix entry — the cost profile the paper's
// CPU baseline exhibits.
#pragma once

#include <memory>

#include "bignum/biguint.h"

namespace cham {

struct PaillierPublicKey {
  BigUInt n;
  BigUInt n_squared;
  std::shared_ptr<Montgomery> mont_n2;  // shared Montgomery ctx for n²
};

struct PaillierSecretKey {
  BigUInt lambda;  // lcm(p-1, q-1)
  BigUInt mu;      // (L(g^λ mod n²))^{-1} mod n
};

struct PaillierKeyPair {
  PaillierPublicKey pk;
  PaillierSecretKey sk;
};

// Key generation with an n of ~`modulus_bits` bits.
PaillierKeyPair paillier_keygen(int modulus_bits, Rng& rng);

class PaillierEncryptor {
 public:
  explicit PaillierEncryptor(PaillierPublicKey pk) : pk_(std::move(pk)) {}

  // m must be < n.
  BigUInt encrypt(const BigUInt& m, Rng& rng) const;
  // Additive homomorphism: Enc(m1 + m2).
  BigUInt add(const BigUInt& c1, const BigUInt& c2) const;
  // Enc(k · m).
  BigUInt scalar_mul(const BigUInt& c, const BigUInt& k) const;

  const PaillierPublicKey& pk() const { return pk_; }

 private:
  PaillierPublicKey pk_;
};

class PaillierDecryptor {
 public:
  PaillierDecryptor(PaillierPublicKey pk, PaillierSecretKey sk)
      : pk_(std::move(pk)), sk_(std::move(sk)) {}

  BigUInt decrypt(const BigUInt& c) const;

 private:
  PaillierPublicKey pk_;
  PaillierSecretKey sk_;
};

}  // namespace cham
