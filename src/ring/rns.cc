#include "ring/rns.h"

#include <cmath>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "simd/kernels.h"

namespace cham {

RnsBasePtr RnsBase::create(std::size_t n, const std::vector<u64>& primes) {
  CHAM_CHECK_MSG(!primes.empty(), "RNS base needs at least one prime");
  auto base = std::shared_ptr<RnsBase>(new RnsBase());
  base->n_ = n;
  double bits = 0;
  for (u64 p : primes) {
    Modulus m(p);
    bits += std::log2(static_cast<double>(p));
    base->moduli_.push_back(m);
    base->ntt_.push_back(get_ntt_tables(n, m));
  }
  CHAM_CHECK_MSG(bits < 127.0, "total modulus must fit in 128 bits");
  for (std::size_t i = 0; i + 1 < primes.size(); ++i) {
    for (std::size_t j = i + 1; j < primes.size(); ++j) {
      CHAM_CHECK_MSG(primes[i] != primes[j], "RNS primes must be distinct");
    }
  }
  // Every kernel call on this base will take the double-word path when
  // all primes sit above the single-word IFMA bound; say so once so a
  // surprising throughput profile is explainable from the logs.
  simd::note_ifma_wide_context(primes.data(), primes.size());

  // Freeze the span-wise CRT engine (Garner Shoup pairs, Barrett ratios,
  // 2^64 mod q_j) and the rescale constants once; every compose / lift /
  // divide-and-round over this base reuses them instead of recomputing
  // inverses and quotients per call.
  base->crt_ = CrtSpans(base->moduli_);
  base->total_ = base->crt_.total();
  const std::size_t k = primes.size();
  if (k >= 2) {
    const u64 pv = primes[k - 1];
    base->rescale_pinv_.resize(k - 1);
    for (std::size_t l = 0; l + 1 < k; ++l) {
      const Modulus& ql = base->moduli_[l];
      base->rescale_pinv_[l] = make_shoup(ql.inv(pv % ql.value()), ql);
    }
  }
  return base;
}

double RnsBase::total_modulus_log2() const {
  double bits = 0;
  for (const auto& m : moduli_) bits += std::log2(static_cast<double>(m.value()));
  return bits;
}

u128 RnsBase::compose(const u64* residues) const {
  return crt_.compose_value(residues);
}

void RnsBase::decompose(u128 value, u64* residues_out) const {
  crt_.decompose_value(value, residues_out);
}

bool RnsBase::is_prefix_of(const RnsBase& other) const {
  if (n_ != other.n_ || size() + 1 != other.size()) return false;
  for (std::size_t i = 0; i < size(); ++i) {
    if (moduli_[i].value() != other.moduli_[i].value()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------

RnsPoly::RnsPoly(RnsBasePtr base, bool ntt_form)
    : base_(std::move(base)), ntt_form_(ntt_form) {
  CHAM_CHECK(base_ != nullptr);
  data_.assign(base_->size() * base_->n(), 0);
}

void RnsPoly::set_zero() { std::fill(data_.begin(), data_.end(), 0); }

bool RnsPoly::is_zero() const {
  for (u64 v : data_)
    if (v != 0) return false;
  return true;
}

void RnsPoly::to_ntt(int threads) {
  CHAM_CHECK_MSG(!ntt_form_, "already in NTT form");
  if (threads <= 1) {
    for (std::size_t l = 0; l < limbs(); ++l) base_->ntt(l).forward(limb(l));
  } else {
    ThreadPool::global().parallel_for(
        0, limbs(), threads,
        [&](std::size_t l) { base_->ntt(l).forward(limb(l)); });
  }
  ntt_form_ = true;
}

void RnsPoly::from_ntt(int threads) {
  CHAM_CHECK_MSG(ntt_form_, "not in NTT form");
  if (threads <= 1) {
    for (std::size_t l = 0; l < limbs(); ++l) base_->ntt(l).inverse(limb(l));
  } else {
    ThreadPool::global().parallel_for(
        0, limbs(), threads,
        [&](std::size_t l) { base_->ntt(l).inverse(limb(l)); });
  }
  ntt_form_ = false;
}

void RnsPoly::check_compatible(const RnsPoly& o) const {
  CHAM_CHECK_MSG(base_ == o.base_, "operands must share an RNS base");
  CHAM_CHECK_MSG(ntt_form_ == o.ntt_form_, "operands must share a domain");
}

void RnsPoly::add_inplace(const RnsPoly& o) {
  check_compatible(o);
  for (std::size_t l = 0; l < limbs(); ++l)
    poly_add(limb(l), o.limb(l), limb(l), n(), base_->modulus(l));
}

void RnsPoly::sub_inplace(const RnsPoly& o) {
  check_compatible(o);
  for (std::size_t l = 0; l < limbs(); ++l)
    poly_sub(limb(l), o.limb(l), limb(l), n(), base_->modulus(l));
}

void RnsPoly::negate_inplace() {
  for (std::size_t l = 0; l < limbs(); ++l)
    poly_negate(limb(l), limb(l), n(), base_->modulus(l));
}

void RnsPoly::mul_pointwise_inplace(const RnsPoly& o) {
  check_compatible(o);
  CHAM_CHECK_MSG(ntt_form_, "pointwise ring product requires NTT form");
  for (std::size_t l = 0; l < limbs(); ++l)
    poly_mul_pointwise(limb(l), o.limb(l), limb(l), n(), base_->modulus(l));
}

void RnsPoly::mul_pointwise_acc(const RnsPoly& a, const RnsPoly& b) {
  a.check_compatible(b);
  CHAM_CHECK(base_ == a.base_ && ntt_form_ && a.ntt_form_);
  for (std::size_t l = 0; l < limbs(); ++l)
    poly_mul_pointwise_acc(a.limb(l), b.limb(l), limb(l), n(),
                           base_->modulus(l));
}

void RnsPoly::mul_scalar_inplace(const std::vector<u64>& residues) {
  CHAM_CHECK(residues.size() == limbs());
  for (std::size_t l = 0; l < limbs(); ++l)
    poly_mul_scalar(limb(l), residues[l], limb(l), n(), base_->modulus(l));
}

void RnsPoly::mul_scalar_inplace(u64 c) {
  for (std::size_t l = 0; l < limbs(); ++l)
    poly_mul_scalar(limb(l), c % base_->modulus(l).value(), limb(l), n(),
                    base_->modulus(l));
}

RnsPoly RnsPoly::automorph(u64 k) const {
  CHAM_CHECK_MSG(!ntt_form_, "automorphism implemented in coefficient domain");
  RnsPoly out(base_, false);
  for (std::size_t l = 0; l < limbs(); ++l)
    poly_automorph(limb(l), out.limb(l), n(), k, base_->modulus(l));
  return out;
}

RnsPoly RnsPoly::automorph(const AutomorphTable& table) const {
  RnsPoly out(base_, ntt_form_);
  automorph_into(table, out);
  return out;
}

void RnsPoly::automorph_into(const AutomorphTable& table,
                             RnsPoly& out) const {
  CHAM_CHECK_MSG(table.ntt == ntt_form_,
                 "automorph table domain must match the polynomial domain");
  CHAM_CHECK(table.n == n());
  CHAM_CHECK(out.base_ == base_ && &out != this);
  out.ntt_form_ = ntt_form_;
  for (std::size_t l = 0; l < limbs(); ++l)
    poly_automorph(limb(l), out.limb(l), table, base_->modulus(l));
}

RnsPoly RnsPoly::shiftneg(std::size_t s) const {
  CHAM_CHECK_MSG(!ntt_form_, "ShiftNeg implemented in coefficient domain");
  RnsPoly out(base_, false);
  for (std::size_t l = 0; l < limbs(); ++l)
    poly_shiftneg(limb(l), out.limb(l), n(), s, base_->modulus(l));
  return out;
}

RnsPoly RnsPoly::rev() const {
  RnsPoly out(base_, ntt_form_);
  for (std::size_t l = 0; l < limbs(); ++l) poly_rev(limb(l), out.limb(l), n());
  return out;
}

u128 RnsPoly::compose_coeff(std::size_t i) const {
  CHAM_CHECK_MSG(!ntt_form_, "compose requires coefficient domain");
  CHAM_CHECK(i < n());
  std::vector<u64> residues(limbs());
  for (std::size_t l = 0; l < limbs(); ++l) residues[l] = limb(l)[i];
  return base_->compose(residues.data());
}

void RnsPoly::compose_all(u128* out) const {
  CHAM_CHECK_MSG(!ntt_form_, "compose requires coefficient domain");
  base_->crt().compose_spans(data_.data(), n(), n(), out);
}

RnsPoly add(const RnsPoly& a, const RnsPoly& b) {
  RnsPoly out = a;
  out.add_inplace(b);
  return out;
}

RnsPoly sub(const RnsPoly& a, const RnsPoly& b) {
  RnsPoly out = a;
  out.sub_inplace(b);
  return out;
}

ShoupPoly::ShoupPoly(const RnsPoly& src) : base_(src.base()) {
  CHAM_CHECK_MSG(src.is_ntt(), "ShoupPoly freezes an NTT-form polynomial");
  const std::size_t n = src.n();
  operand_ = src.raw();
  quotient_.resize(operand_.size());
  for (std::size_t l = 0; l < src.limbs(); ++l) {
    const u64 q = base_->modulus(l).value();
    const u64* w = operand_.data() + l * n;
    u64* quo = quotient_.data() + l * n;
    for (std::size_t i = 0; i < n; ++i) {
      quo[i] = static_cast<u64>((static_cast<u128>(w[i]) << 64) / q);
    }
  }
}

void ShoupPoly::mul_pointwise(const RnsPoly& x, RnsPoly& out) const {
  CHAM_CHECK(base_ == x.base() && base_ == out.base());
  CHAM_CHECK_MSG(x.is_ntt() && out.is_ntt(),
                 "Shoup pointwise product requires NTT form");
  const std::size_t n = base_->n();
  for (std::size_t l = 0; l < base_->size(); ++l) {
    poly_mul_shoup(x.limb(l), operand_.data() + l * n,
                   quotient_.data() + l * n, out.limb(l), n,
                   base_->modulus(l).value());
  }
}

void ShoupPoly::mul_pointwise_acc(const RnsPoly& x, RnsPoly& acc) const {
  CHAM_CHECK(base_ == x.base() && base_ == acc.base());
  CHAM_CHECK_MSG(x.is_ntt() && acc.is_ntt(),
                 "Shoup pointwise product requires NTT form");
  const std::size_t n = base_->n();
  for (std::size_t l = 0; l < base_->size(); ++l) {
    poly_mul_shoup_acc(x.limb(l), operand_.data() + l * n,
                       quotient_.data() + l * n, acc.limb(l), n,
                       base_->modulus(l).value());
  }
}

RnsPoly divide_round_by_last(const RnsPoly& x, RnsBasePtr target) {
  RnsPoly out(std::move(target), false);
  divide_round_by_last_into(x, out);
  return out;
}

void divide_round_by_last_into(const RnsPoly& x, RnsPoly& out) {
  CHAM_CHECK_MSG(!x.is_ntt(), "rescale requires coefficient domain");
  CHAM_CHECK_MSG(!out.is_ntt(), "rescale output is coefficient domain");
  const RnsBasePtr& target = out.base();
  CHAM_CHECK_MSG(target->is_prefix_of(*x.base()),
                 "target base must be the source base minus its last limb");
  const std::size_t k = target->size();
  const Modulus& p = x.base()->modulus(k);
  const u64 pv = p.value();

  static obs::Counter& calls =
      obs::MetricsRegistry::global().counter("simd.rescale");
  calls.add();

  // Per limb: centered remainder r' of x mod p, so (x - r')/p =
  // round(x/p). The fused kernel reduces r (or p - r) mod q_l with the
  // precomputed floor(2^64/q_l), folds it into x_l, and multiplies by
  // p^{-1} as a Shoup pair — bit-exact with the former Barrett loop.
  // Both constants are frozen on the source base at creation (the target
  // is its prefix, so modulus l is the same prime on either side).
  const RnsBase& src = *x.base();
  const u64* xp = x.limb(k);
  for (std::size_t l = 0; l < k; ++l) {
    const u64 qv = src.modulus(l).value();
    const ShoupMul& p_inv = src.rescale_pinv(l);
    simd::active().rescale_round(x.limb(l), xp, out.limb(l), x.n(), pv, qv,
                                 src.crt().q_barrett(l), p_inv.operand,
                                 p_inv.quotient);
  }
}

RnsPoly lift_centered(const RnsPoly& x, RnsBasePtr target) {
  CHAM_CHECK_MSG(!x.is_ntt(), "lift requires coefficient domain");
  CHAM_CHECK(target->n() == x.n());
  const u128 q = x.base()->total_modulus();
  const u128 half = q / 2;
  const std::size_t n = x.n();
  RnsPoly out(target, false);
  // Span-wise: one Garner compose for the whole polynomial, one pass to
  // split the centered magnitudes into 64-bit halves plus a sign plane,
  // then per target limb a word-wise reduction sweep and a sign fix-up —
  // no per-coefficient u128 division anywhere.
  std::vector<u128> vals(n);
  x.compose_all(vals.data());
  simd::AlignedU64Vec hi(n);
  simd::AlignedU64Vec lo(n);
  simd::AlignedU64Vec scratch(n);
  std::vector<unsigned char> neg(n);
  for (std::size_t i = 0; i < n; ++i) {
    const u128 v = vals[i];
    const bool negative = v > half;
    const u128 mag = negative ? q - v : v;
    neg[i] = negative ? 1 : 0;
    hi[i] = static_cast<u64>(mag >> 64);
    lo[i] = static_cast<u64>(mag);
  }
  for (std::size_t l = 0; l < target->size(); ++l) {
    const Modulus& m = target->modulus(l);
    u64* ol = out.limb(l);
    target->crt().reduce_words_mod(l, hi.data(), lo.data(), ol, n,
                                   scratch.data());
    for (std::size_t i = 0; i < n; ++i) {
      if (neg[i]) ol[i] = m.negate(ol[i]);
    }
  }
  return out;
}

}  // namespace cham
