// Random polynomial samplers used by key generation and encryption.
#pragma once

#include "common/random.h"
#include "ring/rns.h"

namespace cham {

// Uniform over Z_Q (independently uniform per limb, equivalent by CRT).
RnsPoly sample_uniform(RnsBasePtr base, Rng& rng);

// Ternary secret: coefficients in {-1, 0, 1}, each represented per limb.
RnsPoly sample_ternary(RnsBasePtr base, Rng& rng);

// Centered binomial with parameter k=21 (sigma ≈ 3.24, the usual RLWE
// noise width): e = popcount(a) - popcount(b) over 21-bit masks.
RnsPoly sample_noise(RnsBasePtr base, Rng& rng);

// Signed integer coefficients applied to every limb (for tests/encoders).
RnsPoly from_signed_coeffs(RnsBasePtr base,
                           const std::vector<std::int64_t>& coeffs);

}  // namespace cham
