// Random polynomial samplers used by key generation and encryption.
#pragma once

#include "common/random.h"
#include "ring/rns.h"

namespace cham {

// Uniform over Z_Q (independently uniform per limb, equivalent by CRT).
RnsPoly sample_uniform(RnsBasePtr base, Rng& rng);

// Ternary secret: coefficients in {-1, 0, 1}, each represented per limb.
RnsPoly sample_ternary(RnsBasePtr base, Rng& rng);

// Centered binomial with parameter k=21 (sigma ≈ 3.24, the usual RLWE
// noise width): e = popcount(a) - popcount(b) over 21-bit masks.
RnsPoly sample_noise(RnsBasePtr base, Rng& rng);

// Signed integer coefficients applied to every limb (for tests/encoders).
RnsPoly from_signed_coeffs(RnsBasePtr base,
                           const std::vector<std::int64_t>& coeffs);

// Deterministic seed-expanded uniform polynomial — the shared definition
// between seeded encryption/keygen (sender side) and the seed-expanded
// wire loaders (receiver side): uniform over Z_Q drawn from Rng(seed) and
// tagged as evaluation-domain (uniform either way); ntt_form=false
// additionally applies the inverse NTT so the result can stand in for the
// `a` component of a coefficient-domain ciphertext. Bit-exact on both
// endpoints for any fixed seed.
RnsPoly expand_seeded_a(const RnsBasePtr& base, u64 seed, bool ntt_form);

}  // namespace cham
