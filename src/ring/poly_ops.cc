#include "ring/poly_ops.h"

#include <algorithm>

namespace cham {

void poly_add(const u64* a, const u64* b, u64* out, std::size_t n,
              const Modulus& q) {
  for (std::size_t i = 0; i < n; ++i) out[i] = q.add(a[i], b[i]);
}

void poly_sub(const u64* a, const u64* b, u64* out, std::size_t n,
              const Modulus& q) {
  for (std::size_t i = 0; i < n; ++i) out[i] = q.sub(a[i], b[i]);
}

void poly_negate(const u64* a, u64* out, std::size_t n, const Modulus& q) {
  for (std::size_t i = 0; i < n; ++i) out[i] = q.negate(a[i]);
}

void poly_mul_pointwise(const u64* a, const u64* b, u64* out, std::size_t n,
                        const Modulus& q) {
  for (std::size_t i = 0; i < n; ++i) out[i] = q.mul(a[i], b[i]);
}

void poly_mul_pointwise_acc(const u64* a, const u64* b, u64* out,
                            std::size_t n, const Modulus& q) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = q.add(out[i], q.mul(a[i], b[i]));
}

void poly_mul_scalar(const u64* a, u64 c, u64* out, std::size_t n,
                     const Modulus& q) {
  for (std::size_t i = 0; i < n; ++i) out[i] = q.mul(a[i], c);
}

void poly_mul_shoup(const u64* x, const u64* w_op, const u64* w_quo,
                    u64* out, std::size_t n, u64 q) {
  for (std::size_t i = 0; i < n; ++i) {
    const u64 hi =
        static_cast<u64>((static_cast<u128>(x[i]) * w_quo[i]) >> 64);
    const u64 r = x[i] * w_op[i] - hi * q;
    out[i] = r >= q ? r - q : r;
  }
}

void poly_mul_shoup_acc(const u64* x, const u64* w_op, const u64* w_quo,
                        u64* out, std::size_t n, u64 q) {
  for (std::size_t i = 0; i < n; ++i) {
    const u64 hi =
        static_cast<u64>((static_cast<u128>(x[i]) * w_quo[i]) >> 64);
    u64 r = x[i] * w_op[i] - hi * q;
    if (r >= q) r -= q;
    const u64 s = out[i] + r;
    out[i] = s >= q ? s - q : s;
  }
}

void poly_rev(const u64* a, u64* out, std::size_t n) {
  if (a == out) {
    std::reverse(out, out + n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = a[n - 1 - i];
}

void poly_shiftneg(const u64* a, u64* out, std::size_t n, std::size_t s,
                   const Modulus& q) {
  CHAM_CHECK(a != out);
  CHAM_CHECK_MSG(s < 2 * n, "shift must be in [0, 2N)");
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i + s;          // X^i * X^s = X^j
    const std::size_t wraps = j / n;      // each wrap over X^N negates
    const std::size_t pos = j % n;
    out[pos] = (wraps % 2 == 0) ? a[i] : q.negate(a[i]);
  }
}

void poly_automorph(const u64* a, u64* out, std::size_t n, u64 k,
                    const Modulus& q) {
  CHAM_CHECK(a != out);
  CHAM_CHECK_MSG(k % 2 == 1 && k < 2 * n,
                 "automorphism index must be odd and < 2N");
  for (std::size_t i = 0; i < n; ++i) {
    const u64 j = (static_cast<u64>(i) * k) % (2 * n);
    if (j < n) {
      out[j] = a[i];
    } else {
      out[j - n] = q.negate(a[i]);
    }
  }
}

void poly_mul_negacyclic_schoolbook(const u64* a, const u64* b, u64* out,
                                    std::size_t n, const Modulus& q) {
  CHAM_CHECK(a != out && b != out);
  std::fill(out, out + n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      const u64 prod = q.mul(a[i], b[j]);
      const std::size_t k = i + j;
      if (k < n) {
        out[k] = q.add(out[k], prod);
      } else {
        out[k - n] = q.sub(out[k - n], prod);
      }
    }
  }
}

}  // namespace cham
