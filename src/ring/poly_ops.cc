#include "ring/poly_ops.h"

#include <algorithm>

#include "nt/bitops.h"
#include "obs/metrics.h"

namespace cham {

namespace {

// One dispatch counter per kernel family, resolved once (the registry
// lookup takes a mutex; the handles themselves are relaxed atomics).
obs::Counter& simd_counter(const char* name) {
  return obs::MetricsRegistry::global().counter(name);
}

}  // namespace

void poly_add(const u64* a, const u64* b, u64* out, std::size_t n,
              const Modulus& q) {
  static obs::Counter& calls = simd_counter("simd.poly_add");
  calls.add();
  simd::active().add(a, b, out, n, q.value());
}

void poly_sub(const u64* a, const u64* b, u64* out, std::size_t n,
              const Modulus& q) {
  static obs::Counter& calls = simd_counter("simd.poly_sub");
  calls.add();
  simd::active().sub(a, b, out, n, q.value());
}

void poly_negate(const u64* a, u64* out, std::size_t n, const Modulus& q) {
  static obs::Counter& calls = simd_counter("simd.poly_negate");
  calls.add();
  simd::active().negate(a, out, n, q.value());
}

void poly_mul_pointwise(const u64* a, const u64* b, u64* out, std::size_t n,
                        const Modulus& q) {
  for (std::size_t i = 0; i < n; ++i) out[i] = q.mul(a[i], b[i]);
}

void poly_mul_pointwise_acc(const u64* a, const u64* b, u64* out,
                            std::size_t n, const Modulus& q) {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = q.add(out[i], q.mul(a[i], b[i]));
}

void poly_mul_scalar(const u64* a, u64 c, u64* out, std::size_t n,
                     const Modulus& q) {
  // One Shoup precompute amortised over the whole span; exact x·c mod q,
  // so bit-identical to the former per-coefficient Barrett multiply.
  static obs::Counter& calls = simd_counter("simd.mul_scalar");
  calls.add();
  const ShoupMul w = make_shoup(c, q);
  simd::active().mul_scalar_shoup(a, w.operand, w.quotient, out, n,
                                  q.value());
}

void poly_mul_shoup(const u64* x, const u64* w_op, const u64* w_quo,
                    u64* out, std::size_t n, u64 q) {
  static obs::Counter& calls = simd_counter("simd.mul_shoup");
  calls.add();
  simd::active().mul_shoup(x, w_op, w_quo, out, n, q);
}

void poly_mul_shoup_acc(const u64* x, const u64* w_op, const u64* w_quo,
                        u64* out, std::size_t n, u64 q) {
  static obs::Counter& calls = simd_counter("simd.mul_shoup_acc");
  calls.add();
  simd::active().mul_shoup_acc(x, w_op, w_quo, out, n, q);
}

void poly_rev(const u64* a, u64* out, std::size_t n) {
  if (a == out) {
    std::reverse(out, out + n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = a[n - 1 - i];
}

void poly_shiftneg(const u64* a, u64* out, std::size_t n, std::size_t s,
                   const Modulus& q) {
  CHAM_CHECK(a != out);
  CHAM_CHECK_MSG(s < 2 * n, "shift must be in [0, 2N)");
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i + s;          // X^i * X^s = X^j
    const std::size_t wraps = j / n;      // each wrap over X^N negates
    const std::size_t pos = j % n;
    out[pos] = (wraps % 2 == 0) ? a[i] : q.negate(a[i]);
  }
}

void poly_automorph(const u64* a, u64* out, std::size_t n, u64 k,
                    const Modulus& q) {
  CHAM_CHECK(a != out);
  CHAM_CHECK_MSG(k % 2 == 1 && k < 2 * n,
                 "automorphism index must be odd and < 2N");
  for (std::size_t i = 0; i < n; ++i) {
    const u64 j = (static_cast<u64>(i) * k) % (2 * n);
    if (j < n) {
      out[j] = a[i];
    } else {
      out[j - n] = q.negate(a[i]);
    }
  }
}

AutomorphTable make_automorph_table(std::size_t n, u64 k) {
  CHAM_CHECK_MSG(k % 2 == 1 && k < 2 * n,
                 "automorphism index must be odd and < 2N");
  AutomorphTable table;
  table.n = n;
  table.k = k;
  table.ntt = false;
  table.src_idx.resize(n);
  table.flip.resize(n);
  // Invert i -> ik mod N so the apply step is destination-ordered (a
  // gather); k odd makes the map a bijection, so every slot is filled.
  for (std::size_t i = 0; i < n; ++i) {
    const u64 j = (static_cast<u64>(i) * k) % (2 * n);
    const std::size_t dst = j < n ? j : j - n;
    table.src_idx[dst] = static_cast<u64>(i);
    table.flip[dst] = j < n ? 0 : ~u64{0};
  }
  return table;
}

AutomorphTable make_automorph_table_ntt(std::size_t n, u64 k) {
  CHAM_CHECK_MSG(k % 2 == 1 && k < 2 * n,
                 "automorphism index must be odd and < 2N");
  AutomorphTable table;
  table.n = n;
  table.k = k;
  table.ntt = true;
  table.src_idx.resize(n);
  table.flip.resize(n);
  const int log_n = log2_exact(n);
  const u64 mask = 2 * static_cast<u64>(n) - 1;
  // Slot i holds a(ψ^{2·rev(i)+1}); a(X^k) puts the evaluation at the
  // odd power k·(2·rev(i)+1) mod 2N there, which is slot
  // rev((that power - 1) / 2). Destination-ordered already — permute
  // gathers out[i] = a[src_idx[i]] with no sign flips (odd powers of ψ
  // permute among themselves; no ψ^N = -1 factor ever splits off).
  for (std::size_t i = 0; i < n; ++i) {
    const u64 rev_i =
        bit_reverse(static_cast<std::uint32_t>(i), log_n);
    const u64 pow = (k * (2 * rev_i + 1)) & mask;
    table.src_idx[i] =
        bit_reverse(static_cast<std::uint32_t>(pow >> 1), log_n);
    table.flip[i] = 0;
  }
  return table;
}

void poly_automorph(const u64* a, u64* out, const AutomorphTable& table,
                    const Modulus& q) {
  CHAM_CHECK(a != out);
  static obs::Counter& calls = simd_counter("simd.automorph");
  calls.add();
  simd::active().permute(a, table.src_idx.data(), table.flip.data(), out,
                         table.n, q.value());
}

void poly_barrett_reduce(const u64* x, u64* out, std::size_t n,
                         const Modulus& q) {
  static obs::Counter& calls = simd_counter("simd.barrett_reduce");
  calls.add();
  const u64 qv = q.value();
  const u64 q_barrett =
      static_cast<u64>((static_cast<unsigned __int128>(1) << 64) / qv);
  simd::active().barrett_reduce(x, out, n, qv, q_barrett);
}

void poly_mul_negacyclic_schoolbook(const u64* a, const u64* b, u64* out,
                                    std::size_t n, const Modulus& q) {
  CHAM_CHECK(a != out && b != out);
  std::fill(out, out + n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      const u64 prod = q.mul(a[i], b[j]);
      const std::size_t k = i + j;
      if (k < n) {
        out[k] = q.add(out[k], prod);
      } else {
        out[k - n] = q.sub(out[k - n], prod);
      }
    }
  }
}

}  // namespace cham
