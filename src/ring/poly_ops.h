// Span-based polynomial primitives over Z_q[X]/(X^N + 1) — the functions
// CHAM's polynomial processing units implement (paper Table I): ModAdd,
// ModMul, Rev, ShiftNeg, Automorph, plus negation and scalar multiply.
// All operate coefficient-wise on length-n arrays with entries < q.
#pragma once

#include <cstdint>

#include "nt/modulus.h"
#include "simd/aligned.h"
#include "simd/kernels.h"

namespace cham {

// out = a + b
void poly_add(const u64* a, const u64* b, u64* out, std::size_t n,
              const Modulus& q);
// out = a - b
void poly_sub(const u64* a, const u64* b, u64* out, std::size_t n,
              const Modulus& q);
// out = -a
void poly_negate(const u64* a, u64* out, std::size_t n, const Modulus& q);
// out = a ∘ b (coefficient-wise product; meaningful in NTT domain, and in
// the coefficient domain it is the PPU's ModMul primitive)
void poly_mul_pointwise(const u64* a, const u64* b, u64* out, std::size_t n,
                        const Modulus& q);
// out += a ∘ b
void poly_mul_pointwise_acc(const u64* a, const u64* b, u64* out,
                            std::size_t n, const Modulus& q);
// out = c * a for scalar c < q
void poly_mul_scalar(const u64* a, u64 c, u64* out, std::size_t n,
                     const Modulus& q);

// out = x ∘ w with per-coefficient Shoup pairs (w_op[i], w_quo[i]) for the
// fixed operand w: one high-half multiply + one low multiply per
// coefficient instead of a full Barrett reduction. Bit-exact with
// poly_mul_pointwise. Supports out aliasing x.
void poly_mul_shoup(const u64* x, const u64* w_op, const u64* w_quo,
                    u64* out, std::size_t n, u64 q);
// out += x ∘ w (same Shoup form; fused multiply-accumulate).
void poly_mul_shoup_acc(const u64* x, const u64* w_op, const u64* w_quo,
                        u64* out, std::size_t n, u64 q);

// Rev (Table I): out = [a_{N-1}, ..., a_1, a_0]. Supports in-place.
void poly_rev(const u64* a, u64* out, std::size_t n);

// out = a(X) * X^s in the negacyclic ring, s in [0, 2N). Coefficients that
// wrap past X^N pick up a sign (ShiftNeg in Table I). Does NOT support
// aliasing of a and out.
void poly_shiftneg(const u64* a, u64* out, std::size_t n, std::size_t s,
                   const Modulus& q);

// out = a(X^k) for odd k in [1, 2N) (Automorph in Table I):
// a_i -> (-1)^{floor(ik/N)} a at index ik mod N. Does NOT support aliasing.
void poly_automorph(const u64* a, u64* out, std::size_t n, u64 k,
                    const Modulus& q);

// Precomputed Automorph routing, inverted to destination order so the
// permutation becomes a gather: out[d] = ±a[src_idx[d]], negated mod q
// where flip[d] == ~0. Tables depend only on (n, k) — not the modulus —
// so one table serves every RNS limb; Evaluator::apply_galois caches
// them per Galois element. `ntt` records which domain the routing is
// for: coefficient order (make_automorph_table) or the bit-reversed
// negacyclic evaluation order (make_automorph_table_ntt).
struct AutomorphTable {
  std::size_t n = 0;
  u64 k = 0;
  bool ntt = false;
  simd::AlignedU64Vec src_idx;
  simd::AlignedU64Vec flip;
};
AutomorphTable make_automorph_table(std::size_t n, u64 k);

// Automorph routing in the NTT (evaluation) domain. Slot i of the
// bit-reversed negacyclic NTT holds a(ψ^{2·rev(i)+1}), so a(X^k)
// evaluates there to a(ψ^{k·(2·rev(i)+1) mod 2N}) — still an odd root
// power, i.e. some other slot of the same transform. The automorphism is
// therefore a pure slot gather with no sign flips:
//   src_idx[i] = rev(((k·(2·rev(i)+1)) mod 2N) >> 1),  flip[i] = 0.
// This is what keeps the pack tree NTT-resident: applying Galois maps in
// evaluation form costs one permute instead of an NTT round-trip.
AutomorphTable make_automorph_table_ntt(std::size_t n, u64 k);

// Table-driven Automorph via the dispatched permute kernel. Bit-exact
// with the modular-index form above (for coefficient-domain tables).
// Does NOT support aliasing.
void poly_automorph(const u64* a, u64* out, const AutomorphTable& table,
                    const Modulus& q);

// out[i] = x[i] mod q for arbitrary 64-bit x, via the dispatched
// Barrett-reduction kernel (q_barrett = floor(2^64/q), computed once and
// amortised over the span). The key-switch digit-lift primitive:
// replaces the scalar `%` loop when spreading a base-q residue limb
// across base_qp.
void poly_barrett_reduce(const u64* x, u64* out, std::size_t n,
                         const Modulus& q);

// Schoolbook negacyclic convolution out = a * b mod (X^N + 1); O(N^2)
// reference used by tests to validate the NTT path.
void poly_mul_negacyclic_schoolbook(const u64* a, const u64* b, u64* out,
                                    std::size_t n, const Modulus& q);

}  // namespace cham
