// RNS (residue number system) polynomials.
//
// A ciphertext polynomial lives in Z_Q[X]/(X^N+1) with Q a product of
// word-sized NTT primes; it is stored as one length-N limb per prime
// (limb-major layout). RnsBase bundles the primes, their NTT tables, and
// the CRT precomputations (Garner mixed-radix constants) shared by all
// polynomials over the same basis.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bignum/crt.h"
#include "nt/modulus.h"
#include "nt/ntt.h"
#include "ring/poly_ops.h"
#include "simd/aligned.h"

namespace cham {

class RnsBase;
using RnsBasePtr = std::shared_ptr<const RnsBase>;

class RnsBase : public std::enable_shared_from_this<RnsBase> {
 public:
  static RnsBasePtr create(std::size_t n, const std::vector<u64>& primes);

  std::size_t n() const { return n_; }
  std::size_t size() const { return moduli_.size(); }
  const Modulus& modulus(std::size_t i) const { return moduli_[i]; }
  const std::vector<Modulus>& moduli() const { return moduli_; }
  const NttTables& ntt(std::size_t i) const { return *ntt_[i]; }

  // Q = Π q_i; total bit width must stay below 128.
  u128 total_modulus() const { return total_; }
  double total_modulus_log2() const;

  // Garner composition: CRT residues (one per limb) -> integer in [0, Q).
  u128 compose(const u64* residues) const;
  // Residues of an arbitrary u128 value.
  void decompose(u128 value, u64* residues_out) const;

  // The frozen span-wise CRT engine over this chain (Garner Shoup pairs,
  // per-modulus Barrett ratios, 2^64 mod q_j) — shared by compose_all,
  // lift_centered, and the rescale constants below.
  const CrtSpans& crt() const { return crt_; }

  // Frozen rescale constant for divide_round_by_last: the last prime's
  // inverse mod q_l as a Shoup pair (l < size() - 1; only built when the
  // chain has at least two limbs).
  const ShoupMul& rescale_pinv(std::size_t l) const {
    return rescale_pinv_[l];
  }

  // True if `other` equals this base without its last limb.
  bool is_prefix_of(const RnsBase& other) const;

 private:
  RnsBase() = default;
  std::size_t n_ = 0;
  std::vector<Modulus> moduli_;
  std::vector<std::shared_ptr<const NttTables>> ntt_;
  u128 total_ = 1;
  CrtSpans crt_;
  std::vector<ShoupMul> rescale_pinv_;
};

// An RNS polynomial bound to a base; tracks whether limbs are in NTT form.
class RnsPoly {
 public:
  RnsPoly() = default;
  explicit RnsPoly(RnsBasePtr base, bool ntt_form = false);

  const RnsBasePtr& base() const { return base_; }
  std::size_t n() const { return base_->n(); }
  std::size_t limbs() const { return base_->size(); }
  bool is_ntt() const { return ntt_form_; }
  void set_ntt_form(bool v) { ntt_form_ = v; }

  u64* limb(std::size_t l) { return data_.data() + l * n(); }
  const u64* limb(std::size_t l) const { return data_.data() + l * n(); }
  simd::AlignedU64Vec& raw() { return data_; }
  const simd::AlignedU64Vec& raw() const { return data_; }

  void set_zero();
  bool is_zero() const;

  // Domain conversion (in place). threads > 1 transforms limbs in
  // parallel on the global ThreadPool (CHAM's limb-parallel NTT engines);
  // nested calls from inside a pool lane run inline.
  void to_ntt(int threads = 1);
  void from_ntt(int threads = 1);

  // Arithmetic (element-wise per limb; operands must share base & domain).
  void add_inplace(const RnsPoly& o);
  void sub_inplace(const RnsPoly& o);
  void negate_inplace();
  void mul_pointwise_inplace(const RnsPoly& o);    // requires NTT form
  void mul_pointwise_acc(const RnsPoly& a, const RnsPoly& b);  // this += a∘b
  // Multiply by a scalar given as per-limb residues.
  void mul_scalar_inplace(const std::vector<u64>& residues);
  void mul_scalar_inplace(u64 c);  // c reduced per limb

  // Table-I structural ops (modular-index form: coefficient domain only).
  RnsPoly automorph(u64 k) const;
  // Table-driven Automorph: one (n, k) table serves every limb (the
  // permutation is modulus-independent). The table's domain must match
  // the polynomial's — coefficient tables (make_automorph_table) apply
  // to coefficient form, NTT tables (make_automorph_table_ntt) apply to
  // evaluation form without leaving it. Used by the Evaluator's cached
  // Galois path and the NTT-resident pack tree.
  RnsPoly automorph(const AutomorphTable& table) const;
  // Allocation-free variant: out must share the base and not alias this.
  void automorph_into(const AutomorphTable& table, RnsPoly& out) const;
  RnsPoly shiftneg(std::size_t s) const;  // *X^s
  RnsPoly rev() const;

  // Centered coefficient i as an integer (coefficient domain).
  u128 compose_coeff(std::size_t i) const;
  // All n composed coefficients at once (coefficient domain; out holds
  // n() values). Runs the base's span-wise Garner engine — whole-limb
  // kernel sweeps instead of n per-coefficient recursions — and is
  // bit-exact with compose_coeff at every index. Decryption and CKKS
  // decode use this.
  void compose_all(u128* out) const;

  friend RnsPoly add(const RnsPoly& a, const RnsPoly& b);
  friend RnsPoly sub(const RnsPoly& a, const RnsPoly& b);

 private:
  void check_compatible(const RnsPoly& o) const;
  RnsBasePtr base_;
  bool ntt_form_ = false;
  // 64-byte-aligned limb-major storage: every limb starts on a vector
  // register boundary (n is a power of two ≥ 8 in practice).
  simd::AlignedU64Vec data_;
};

// An NTT-domain polynomial frozen into Shoup form: every coefficient
// carries its precomputed quotient floor(w·2^64/q), so repeated pointwise
// products against *varying* operands cost one high-half multiply + one
// low multiply per coefficient instead of a Barrett reduction. This is
// the natural form for HMVP's ct(v) chunks, which are reused across up to
// N matrix rows. Results are bit-exact with the Barrett path.
class ShoupPoly {
 public:
  ShoupPoly() = default;
  // src must be in NTT form; the precompute costs one division per
  // coefficient and is amortized over every later product.
  explicit ShoupPoly(const RnsPoly& src);

  const RnsBasePtr& base() const { return base_; }
  bool empty() const { return base_ == nullptr; }

  // out = this ∘ x (out must share the base; fully reduced).
  void mul_pointwise(const RnsPoly& x, RnsPoly& out) const;
  // acc += this ∘ x.
  void mul_pointwise_acc(const RnsPoly& x, RnsPoly& acc) const;

 private:
  RnsBasePtr base_;
  simd::AlignedU64Vec operand_;   // limb-major, same layout as RnsPoly
  simd::AlignedU64Vec quotient_;  // floor(operand << 64 / q_l)
};

// Divide-and-round by the base's last prime: maps a coefficient-domain
// polynomial over {q_0..q_{k-1}, p} to round(x / p) over {q_0..q_{k-1}}
// (the paper's Rescale, pipeline stage 4; also BFV modulus switching).
RnsPoly divide_round_by_last(const RnsPoly& x, RnsBasePtr target);
// Allocation-free variant: out must already be bound to the target base
// (coefficient domain); used by scratch-arena hot loops.
void divide_round_by_last_into(const RnsPoly& x, RnsPoly& out);

// Exact lift of a coefficient-domain polynomial onto a larger base whose
// first limbs match. New limbs get the centered representative reduced mod
// the new primes (valid when coefficients are "small", e.g. RNS digits).
RnsPoly lift_centered(const RnsPoly& x, RnsBasePtr target);

}  // namespace cham
