#include "ring/sampling.h"

#include "nt/bitops.h"

namespace cham {

RnsPoly sample_uniform(RnsBasePtr base, Rng& rng) {
  RnsPoly out(base, false);
  for (std::size_t l = 0; l < out.limbs(); ++l) {
    const u64 q = base->modulus(l).value();
    u64* c = out.limb(l);
    for (std::size_t i = 0; i < out.n(); ++i) c[i] = rng.uniform(q);
  }
  return out;
}

namespace {
// Write the signed coefficient v (small) into every limb at index i.
void store_signed(RnsPoly& p, std::size_t i, std::int64_t v) {
  for (std::size_t l = 0; l < p.limbs(); ++l) {
    p.limb(l)[i] = p.base()->modulus(l).from_signed(v);
  }
}
}  // namespace

RnsPoly sample_ternary(RnsBasePtr base, Rng& rng) {
  RnsPoly out(base, false);
  for (std::size_t i = 0; i < out.n(); ++i) {
    const u64 r = rng.uniform(3);
    store_signed(out, i, static_cast<std::int64_t>(r) - 1);
  }
  return out;
}

RnsPoly sample_noise(RnsBasePtr base, Rng& rng) {
  RnsPoly out(base, false);
  constexpr u64 kMask21 = (1ULL << 21) - 1;
  for (std::size_t i = 0; i < out.n(); ++i) {
    const u64 bits = rng.next_u64();
    const int a = popcount_u64(bits & kMask21);
    const int b = popcount_u64((bits >> 21) & kMask21);
    store_signed(out, i, a - b);
  }
  return out;
}

RnsPoly expand_seeded_a(const RnsBasePtr& base, u64 seed, bool ntt_form) {
  Rng rng(seed);
  RnsPoly a = sample_uniform(base, rng);
  a.set_ntt_form(true);
  if (!ntt_form) a.from_ntt();
  return a;
}

RnsPoly from_signed_coeffs(RnsBasePtr base,
                           const std::vector<std::int64_t>& coeffs) {
  CHAM_CHECK(coeffs.size() <= base->n());
  RnsPoly out(base, false);
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    store_signed(out, i, coeffs[i]);
  }
  return out;
}

}  // namespace cham
